//! Secondary indexes over an [`UncertainDatabase`].
//!
//! The database's primary index (relation + key prefix → block) supports the
//! block structure of Section 3; the solvers, however, join facts on
//! *arbitrary* position subsets: a backtracking join binds variables one atom
//! at a time, and the positions that are already bound change from search
//! node to search node. A [`DatabaseIndex`] is an immutable snapshot of the
//! database built for exactly that access pattern:
//!
//! * every fact gets a dense [`FactId`], so candidate sets are plain `u32`
//!   lists instead of cloned facts;
//! * per-relation fact and block lists replace the full-database scans of
//!   `relation_facts` / `blocks_of`;
//! * [`DatabaseIndex::position_index`] builds (lazily, once) a hash index
//!   from the values at any chosen [`PositionSet`] to the ids of the facts
//!   carrying those values, so a join step with bound positions is a single
//!   hash probe;
//! * the sorted active domain is computed once and cached for the
//!   quantifier loops of the first-order model checker.
//!
//! The snapshot is cached on the database ([`UncertainDatabase::index`]).
//! Mutations no longer throw it away: they are logged as a
//! [`crate::ChangeSet`] and the next [`UncertainDatabase::index`] call
//! **patches** the previous snapshot via [`DatabaseIndex::apply_delta`] —
//! fact lists, block lists, hash buckets, statistics, active domain and the
//! columnar view are all maintained incrementally, falling back to a full
//! rebuild only past a configurable delta-volume threshold.

use crate::columnar::{build_code_index, CodeIndex, Columnar, RelationColumns};
use crate::delta::ChangeSet;
use crate::{Block, BlockId, Fact, FxHashMap, RelationId, UncertainDatabase, Value};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Dense id of a fact inside one [`DatabaseIndex`] snapshot.
///
/// Ids run `0..index.fact_count()` and are only meaningful relative to the
/// snapshot that produced them (a mutation of the database produces a new
/// snapshot with new ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub(crate) u32);

impl FactId {
    /// The dense index of the fact.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a fact id from a dense index.
    pub fn from_index(i: usize) -> Self {
        FactId(i as u32)
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fact#{}", self.0)
    }
}

/// A set of attribute positions (0-based), stored as a bitmask.
///
/// Relations in this workspace have small arities (the paper's signatures
/// are `[n, k]` with tiny `n`); 64 positions are plenty.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PositionSet(u64);

impl PositionSet {
    /// The number of representable positions (`0..MAX_POSITIONS`). Callers
    /// indexing relations of larger arity must skip the excess positions
    /// (probing a position subset always yields a candidate *superset*, so
    /// skipping positions is sound wherever candidates are re-checked).
    pub const MAX_POSITIONS: usize = 64;

    /// The empty position set.
    pub fn empty() -> Self {
        PositionSet(0)
    }

    /// The set containing a single position.
    pub fn single(pos: usize) -> Self {
        let mut s = PositionSet::empty();
        s.insert(pos);
        s
    }

    /// Builds a set from an iterator of positions.
    pub fn from_positions(positions: impl IntoIterator<Item = usize>) -> Self {
        let mut s = PositionSet::empty();
        for p in positions {
            s.insert(p);
        }
        s
    }

    /// Adds a position (< 64).
    pub fn insert(&mut self, pos: usize) {
        assert!(
            pos < Self::MAX_POSITIONS,
            "PositionSet supports positions 0..64"
        );
        self.0 |= 1 << pos;
    }

    /// True iff the position is in the set.
    pub fn contains(&self, pos: usize) -> bool {
        pos < Self::MAX_POSITIONS && self.0 & (1 << pos) != 0
    }

    /// True iff no position is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of positions in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..Self::MAX_POSITIONS).filter(move |p| bits & (1 << p) != 0)
    }
}

impl fmt::Debug for PositionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A hash index of one relation on one position subset: maps the tuple of
/// values at those positions (in ascending position order) to the dense ids
/// of the facts carrying them.
pub struct PositionIndex {
    positions: Vec<usize>,
    buckets: FxHashMap<Vec<Value>, Arc<[u32]>>,
    empty: Arc<[u32]>,
}

impl PositionIndex {
    fn build(index: &DatabaseIndex, relation: RelationId, positions: PositionSet) -> Self {
        let positions: Vec<usize> = positions.iter().collect();
        let mut grouped: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
        for &fid in index.relation_fact_ids(relation) {
            let fact = &index.facts[fid as usize];
            let key: Vec<Value> = positions.iter().map(|&p| fact.value(p).clone()).collect();
            grouped.entry(key).or_default().push(fid);
        }
        let buckets = grouped
            .into_iter()
            .map(|(key, ids)| (key, ids.into()))
            .collect();
        PositionIndex {
            positions,
            buckets,
            empty: Arc::from(&[][..]),
        }
    }

    /// The indexed positions, ascending.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The fact ids whose values at the indexed positions equal `key`
    /// (values in ascending position order). Missing keys give `&[]`.
    pub fn candidates(&self, key: &[Value]) -> &[u32] {
        self.buckets.get(key).map_or(&[], |ids| ids)
    }

    /// Like [`PositionIndex::candidates`], but returns a shared handle, so a
    /// caller can resolve the bucket once and keep it without re-hashing the
    /// key (the join engine's per-node pattern).
    pub fn candidates_shared(&self, key: &[Value]) -> Arc<[u32]> {
        self.buckets.get(key).unwrap_or(&self.empty).clone()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over the distinct keys (arbitrary order).
    ///
    /// For a single-position index this enumerates the distinct values of
    /// that column — the candidate set the first-order model checker uses to
    /// restrict quantifier ranges.
    pub fn keys(&self) -> impl Iterator<Item = &[Value]> {
        self.buckets.keys().map(Vec::as_slice)
    }
}

/// Per-relation summary statistics of one [`DatabaseIndex`] snapshot.
///
/// These feed the cost model of the `cqa-exec` physical planner: the number
/// of facts bounds the output of a full scan, and the distinct counts per
/// position estimate the selectivity of an index probe on that position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationStatistics {
    fact_count: usize,
    block_count: usize,
    distinct: Vec<usize>,
    /// Per position, how often each distinct value occurs — the refcounts
    /// that let [`DatabaseIndex::apply_delta`] maintain `distinct` exactly
    /// under inserts *and* removals. Invariant: `distinct[p] == counts[p].len()`.
    /// Shared copy-on-write so cloning the statistics of an untouched
    /// relation during a delta patch is one reference-count bump.
    counts: Arc<Vec<FxHashMap<Value, u32>>>,
}

impl RelationStatistics {
    /// Number of facts of the relation.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Number of blocks (distinct keys) of the relation.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Number of distinct values at one attribute position (`None` when the
    /// position is out of range for the relation's arity).
    pub fn distinct_count(&self, position: usize) -> Option<usize> {
        self.distinct.get(position).copied()
    }

    /// Distinct counts for every position, in position order.
    pub fn distinct_counts(&self) -> &[usize] {
        &self.distinct
    }
}

/// Snapshot-wide statistics: one [`RelationStatistics`] per relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statistics {
    relations: Vec<RelationStatistics>,
}

impl Statistics {
    /// The statistics of one relation.
    pub fn relation(&self, relation: RelationId) -> &RelationStatistics {
        &self.relations[relation.index()]
    }

    /// Iterates over `(RelationId, &RelationStatistics)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationStatistics)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, s)| (RelationId::from_index(i), s))
    }
}

/// An immutable index snapshot of an [`UncertainDatabase`].
///
/// Obtained from [`UncertainDatabase::index`]; see the module documentation.
pub struct DatabaseIndex {
    facts: Vec<Fact>,
    fact_blocks: Vec<u32>,
    by_relation: Vec<Vec<u32>>,
    blocks_by_relation: Vec<Vec<u32>>,
    arities: Vec<usize>,
    active_domain: OnceLock<DomainInfo>,
    statistics: OnceLock<Statistics>,
    position_indexes: Mutex<FxHashMap<(RelationId, u64), Arc<PositionIndex>>>,
    columnar: OnceLock<Columnar>,
    code_indexes: Mutex<FxHashMap<(RelationId, u64), Arc<CodeIndex>>>,
}

/// The cached active domain: sorted distinct values plus, per value, its
/// number of occurrences across all fact positions — the refcounts that let
/// [`DatabaseIndex::apply_delta`] decide exactly when an insert extends or a
/// removal shrinks the domain.
struct DomainInfo {
    values: Arc<[Value]>,
    counts: Vec<u32>,
}

/// The base arrays of a [`DatabaseIndex`]: everything derived from a single
/// ordered walk of the database's blocks. Shared by [`DatabaseIndex::build`]
/// and [`DatabaseIndex::apply_delta`] so both produce *identical* fact-id
/// assignments by construction.
struct IndexBase {
    facts: Vec<Fact>,
    fact_blocks: Vec<u32>,
    by_relation: Vec<Vec<u32>>,
    blocks_by_relation: Vec<Vec<u32>>,
    arities: Vec<usize>,
}

impl IndexBase {
    fn build(db: &UncertainDatabase) -> Self {
        let relations = db.schema().len();
        let mut facts = Vec::with_capacity(db.fact_count());
        let mut fact_blocks = Vec::with_capacity(db.fact_count());
        let mut by_relation = vec![Vec::new(); relations];
        let mut blocks_by_relation = vec![Vec::new(); relations];
        for (block_id, block) in db.blocks_with_ids() {
            blocks_by_relation[block.relation().index()].push(block_id.0);
            for fact in block.facts() {
                let fid = facts.len() as u32;
                by_relation[fact.relation().index()].push(fid);
                facts.push(fact.clone());
                fact_blocks.push(block_id.0);
            }
        }
        IndexBase {
            facts,
            fact_blocks,
            by_relation,
            blocks_by_relation,
            arities: db.schema().iter().map(|(_, r)| r.arity()).collect(),
        }
    }
}

impl DatabaseIndex {
    pub(crate) fn build(db: &UncertainDatabase) -> Self {
        let base = IndexBase::build(db);
        DatabaseIndex {
            facts: base.facts,
            fact_blocks: base.fact_blocks,
            by_relation: base.by_relation,
            blocks_by_relation: base.blocks_by_relation,
            arities: base.arities,
            active_domain: OnceLock::new(),
            statistics: OnceLock::new(),
            position_indexes: Mutex::new(FxHashMap::default()),
            columnar: OnceLock::new(),
            code_indexes: Mutex::new(FxHashMap::default()),
        }
    }

    /// Number of relations in the schema the snapshot was built over.
    pub fn relation_count(&self) -> usize {
        self.arities.len()
    }

    /// Arity of one relation.
    pub fn arity(&self, relation: RelationId) -> usize {
        self.arities[relation.index()]
    }

    /// Number of facts in the snapshot.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// The fact with the given dense id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.index()]
    }

    /// The block (id) a fact belongs to.
    pub fn block_of(&self, id: FactId) -> BlockId {
        BlockId(self.fact_blocks[id.index()])
    }

    /// Dense ids of all facts of one relation, in snapshot order.
    pub fn relation_fact_ids(&self, relation: RelationId) -> &[u32] {
        &self.by_relation[relation.index()]
    }

    /// Ids of all blocks of one relation.
    pub fn relation_block_ids(&self, relation: RelationId) -> &[u32] {
        &self.blocks_by_relation[relation.index()]
    }

    /// Iterates over the facts of one relation without a database scan.
    pub fn relation_facts(&self, relation: RelationId) -> impl Iterator<Item = &Fact> {
        self.relation_fact_ids(relation)
            .iter()
            .map(move |&fid| &self.facts[fid as usize])
    }

    /// Iterates over the blocks of one relation of `db` without scanning the
    /// other relations' blocks.
    ///
    /// `db` must be the database this snapshot was built from.
    pub fn relation_blocks<'a>(
        &'a self,
        db: &'a UncertainDatabase,
        relation: RelationId,
    ) -> impl Iterator<Item = &'a Block> {
        self.relation_block_ids(relation)
            .iter()
            .map(move |&b| db.block(BlockId(b)))
    }

    /// The sorted, deduplicated active domain, computed once per snapshot.
    pub fn active_domain(&self) -> &[Value] {
        &self.domain_info().values
    }

    /// The active domain as a shared handle (the allocation backing both
    /// [`DatabaseIndex::active_domain`] and the columnar dictionary).
    pub fn active_domain_shared(&self) -> Arc<[Value]> {
        self.domain_info().values.clone()
    }

    fn domain_info(&self) -> &DomainInfo {
        self.active_domain.get_or_init(|| {
            cqa_obs::count!("data.active_domain.build");
            let mut dom: Vec<Value> = self
                .facts
                .iter()
                .flat_map(|f| f.values().iter().cloned())
                .collect();
            dom.sort();
            // Run-length encode: distinct sorted values + occurrence counts.
            let mut values = Vec::new();
            let mut counts = Vec::new();
            for value in dom {
                if values.last() == Some(&value) {
                    *counts.last_mut().expect("counts tracks values") += 1;
                } else {
                    values.push(value);
                    counts.push(1);
                }
            }
            DomainInfo {
                values: values.into(),
                counts,
            }
        })
    }

    /// Per-relation statistics (cardinality, block count, distinct values
    /// per position), computed once per snapshot and cached.
    ///
    /// These are the inputs of the `cqa-exec` cost model: they are exact for
    /// the snapshot they were computed on and serve as *estimates* when a
    /// plan compiled against one snapshot is executed against another.
    pub fn statistics(&self) -> &Statistics {
        self.statistics.get_or_init(|| {
            cqa_obs::count!("data.statistics.build");
            let relations = self
                .by_relation
                .iter()
                .enumerate()
                .map(|(rel, fact_ids)| {
                    let arity = self.arities[rel];
                    let mut seen: Vec<FxHashMap<Value, u32>> = vec![FxHashMap::default(); arity];
                    for &fid in fact_ids {
                        let fact = &self.facts[fid as usize];
                        for (pos, value) in fact.values().iter().enumerate() {
                            *seen[pos].entry(value.clone()).or_insert(0) += 1;
                        }
                    }
                    RelationStatistics {
                        fact_count: fact_ids.len(),
                        block_count: self.blocks_by_relation[rel].len(),
                        distinct: seen.iter().map(FxHashMap::len).collect(),
                        counts: Arc::new(seen),
                    }
                })
                .collect();
            Statistics { relations }
        })
    }

    /// The hash index of `relation` on the given position subset, built on
    /// first use and cached for the lifetime of the snapshot.
    ///
    /// An empty position set yields a single bucket (the empty key) holding
    /// every fact of the relation; callers with no bound positions should
    /// prefer [`DatabaseIndex::relation_fact_ids`].
    pub fn position_index(
        &self,
        relation: RelationId,
        positions: PositionSet,
    ) -> Arc<PositionIndex> {
        let key = (relation, positions.0);
        // The cache only ever grows and entries are immutable, so a panic in
        // some other holder of the lock cannot leave it inconsistent —
        // recover from poisoning instead of propagating it.
        if let Some(existing) = self
            .position_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("data.position_index.hit");
            return existing.clone();
        }
        cqa_obs::count!("data.position_index.miss");
        // Build outside the lock: concurrent builders may race, in which
        // case one result wins and the duplicates are dropped — harmless.
        let started = std::time::Instant::now();
        let built = Arc::new(PositionIndex::build(self, relation, positions));
        cqa_obs::observe_duration!("data.position_index.build_nanos", started.elapsed());
        let mut cache = self
            .position_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.entry(key).or_insert(built).clone()
    }

    /// The dictionary-encoded columnar view of the snapshot, materialized on
    /// first use and cached — the value arrays the vectorized executor scans.
    pub fn columnar(&self) -> &Columnar {
        // The pre-check races benignly: two first callers may both count a
        // miss, but `get_or_init` still builds exactly once.
        if self.columnar.get().is_some() {
            cqa_obs::count!("data.columnar.hit");
        } else {
            cqa_obs::count!("data.columnar.miss");
        }
        self.columnar.get_or_init(|| {
            let started = std::time::Instant::now();
            let built = Columnar::build(self);
            cqa_obs::observe_duration!("data.columnar.build_nanos", started.elapsed());
            built
        })
    }

    /// The packed-code hash index of `relation` over one or two `positions`
    /// (ascending), built on first use and cached for the snapshot — the
    /// vectorized counterpart of [`DatabaseIndex::position_index`].
    pub fn code_index(&self, relation: RelationId, positions: &[usize]) -> Arc<CodeIndex> {
        // One or two positions, packed 1-biased so [p] and [p, 0] differ.
        let packed = match positions {
            [p] => *p as u64 + 1,
            [p, q] => (*p as u64 + 1) | ((*q as u64 + 1) << 32),
            _ => panic!("CodeIndex keys cover one or two positions"),
        };
        let key = (relation, packed);
        if let Some(existing) = self
            .code_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            cqa_obs::count!("data.code_index.hit");
            return existing.clone();
        }
        cqa_obs::count!("data.code_index.miss");
        // Same build-outside-the-lock pattern as `position_index`.
        let started = std::time::Instant::now();
        let built = Arc::new(build_code_index(self.columnar(), relation, positions));
        cqa_obs::observe_duration!("data.code_index.build_nanos", started.elapsed());
        let mut cache = self
            .code_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.entry(key).or_insert(built).clone()
    }

    /// Builds the snapshot of `db` by **patching** this snapshot with the
    /// recorded `changes` instead of recomputing everything from scratch.
    ///
    /// `db` must be the database this snapshot was built from, after exactly
    /// the mutations recorded in `changes` (this is the invariant
    /// [`UncertainDatabase::index`] maintains). The result is
    /// indistinguishable from a full rebuild: the base arrays are rebuilt
    /// from the same ordered block walk (so fact ids are identical by
    /// construction), and every *cached* derived structure — active domain,
    /// statistics, position hash indexes, columnar view, code indexes — is
    /// carried over patched, so the work already invested in the old
    /// snapshot survives small mutations.
    ///
    /// Facts are matched across snapshots by **allocation identity**: a
    /// stored fact's `values` allocation is shared between the database, the
    /// old snapshot and the delta log, so pointer equality identifies
    /// surviving facts without hashing a single value. (Facts are non-empty
    /// — arities are ≥ 1 by schema validation — and the old snapshot keeps
    /// its allocations alive for the duration of the patch, so pointers are
    /// unambiguous.)
    pub fn apply_delta(&self, db: &UncertainDatabase, changes: &ChangeSet) -> DatabaseIndex {
        /// Sentinel for "no counterpart in the other snapshot".
        const GONE: u32 = u32::MAX;

        let base = IndexBase::build(db);

        // ---- old→new fact-id mapping -----------------------------------
        // `mapping[old]` is the new id of a surviving fact (GONE for removed
        // ones); `inserted_ids[slot]` is the new id of `changes.inserted()[slot]`
        // (GONE when the slot aliases a surviving fact, i.e. the very same
        // allocation was removed and re-inserted — then the mapping already
        // covers it and the insert must not be double-counted in id space).
        let mut mapping = vec![GONE; self.facts.len()];
        let mut inserted_ids = vec![GONE; changes.inserted().len()];
        if !changes.any_block_removed() {
            // Fast path: no block disappeared, so old block ids are still
            // valid and each old block's fact ids form one contiguous range
            // (the build walk assigns them in block order). Match by a ptr
            // scan inside that tiny range — zero hashing.
            let old_blocks = self
                .fact_blocks
                .iter()
                .map(|&b| b as usize + 1)
                .max()
                .unwrap_or(0);
            let mut starts = vec![0u32; old_blocks + 1];
            for &b in &self.fact_blocks {
                starts[b as usize + 1] += 1;
            }
            for i in 0..old_blocks {
                starts[i + 1] += starts[i];
            }
            for (new_id, fact) in base.facts.iter().enumerate() {
                let bi = base.fact_blocks[new_id] as usize;
                let range = if bi < old_blocks {
                    starts[bi] as usize..starts[bi + 1] as usize
                } else {
                    0..0 // a block created after the snapshot
                };
                let old = range.clone().find(|&old| {
                    std::ptr::eq(self.facts[old].values().as_ptr(), fact.values().as_ptr())
                });
                match old {
                    Some(old) => mapping[old] = new_id as u32,
                    None => {
                        let slot = changes
                            .inserted()
                            .iter()
                            .position(|f| std::ptr::eq(f.values().as_ptr(), fact.values().as_ptr()))
                            .expect(
                                "every fact absent from the old snapshot was recorded \
                                 as inserted",
                            );
                        inserted_ids[slot] = new_id as u32;
                    }
                }
            }
        } else {
            // General path: block removal reordered block ids (`swap_remove`),
            // so old ranges are meaningless — match through one cheap
            // pointer-keyed hash map over the new facts.
            let by_ptr: FxHashMap<usize, u32> = base
                .facts
                .iter()
                .enumerate()
                .map(|(id, f)| (f.values().as_ptr() as usize, id as u32))
                .collect();
            for (old, fact) in self.facts.iter().enumerate() {
                if let Some(&new_id) = by_ptr.get(&(fact.values().as_ptr() as usize)) {
                    mapping[old] = new_id;
                }
            }
            for (slot, fact) in changes.inserted().iter().enumerate() {
                if let Some(&new_id) = by_ptr.get(&(fact.values().as_ptr() as usize)) {
                    inserted_ids[slot] = new_id;
                }
            }
        }

        // Inverse mapping (new id → old id), also used to cancel aliased
        // re-inserts: a slot whose new id is already claimed by a surviving
        // old fact is the same allocation removed and re-inserted.
        let mut old_of_new = vec![GONE; base.facts.len()];
        for (old, &new_id) in mapping.iter().enumerate() {
            if new_id != GONE {
                old_of_new[new_id as usize] = old as u32;
            }
        }
        for id in inserted_ids.iter_mut() {
            if *id != GONE && old_of_new[*id as usize] != GONE {
                *id = GONE;
            }
        }

        // Which relations gained or lost facts (their stats/columns/indexes
        // need patching; everything else is carried over verbatim).
        let mut touched = vec![false; self.arities.len()];
        for fact in changes.inserted().iter().chain(changes.removed()) {
            touched[fact.relation().index()] = true;
        }

        // Whether every surviving fact kept its id. Only then can an
        // untouched relation's fact-id buckets be carried over verbatim: a
        // removal, or an insert into a block that is not last in the walk,
        // shifts the ids of every fact after it — across all relations.
        let ids_stable = mapping.iter().enumerate().all(|(i, &m)| m == i as u32);

        // ---- active domain ---------------------------------------------
        // Patched via the cached occurrence counts: an insert extends the
        // domain only on a count 0→1 transition, a removal shrinks it only
        // on 1→0. `code_remap` translates old dictionary codes to new ones
        // (None = the value array is unchanged, codes are stable).
        let mut code_remap: Option<Vec<u32>> = None;
        let domain_patch: Option<DomainInfo> = self.active_domain.get().map(|info| {
            let old_values = &info.values;
            let mut counts = info.counts.clone();
            let mut added: Vec<&Value> = Vec::new();
            for fact in changes.inserted() {
                for value in fact.values() {
                    match old_values.binary_search(value) {
                        Ok(i) => counts[i] += 1,
                        Err(_) => added.push(value),
                    }
                }
            }
            for fact in changes.removed() {
                for value in fact.values() {
                    let i = old_values.binary_search(value).expect(
                        "removed facts come from the snapshot, so their values are \
                         in the cached domain",
                    );
                    counts[i] -= 1;
                }
            }
            if added.is_empty() && counts.iter().all(|&c| c > 0) {
                // Same value set: share the allocation (and so the
                // dictionary identity) with the old snapshot.
                return DomainInfo {
                    values: old_values.clone(),
                    counts,
                };
            }
            // The value set changed: merge surviving old values with the
            // (sorted, run-length-counted) additions. Added values are by
            // construction absent from the old array, so the merge never
            // sees an equal pair.
            added.sort();
            let mut values = Vec::with_capacity(old_values.len() + added.len());
            let mut new_counts = Vec::with_capacity(old_values.len() + added.len());
            let mut remap = vec![GONE; old_values.len()];
            let mut ai = 0;
            let push_added_below = |limit: Option<&Value>,
                                    ai: &mut usize,
                                    values: &mut Vec<Value>,
                                    new_counts: &mut Vec<u32>| {
                while *ai < added.len() && limit.is_none_or(|v| added[*ai] < v) {
                    let run = *ai;
                    while *ai < added.len() && added[*ai] == added[run] {
                        *ai += 1;
                    }
                    values.push(added[run].clone());
                    new_counts.push((*ai - run) as u32);
                }
            };
            for (i, value) in old_values.iter().enumerate() {
                push_added_below(Some(value), &mut ai, &mut values, &mut new_counts);
                if counts[i] > 0 {
                    remap[i] = values.len() as u32;
                    values.push(value.clone());
                    new_counts.push(counts[i]);
                }
            }
            push_added_below(None, &mut ai, &mut values, &mut new_counts);
            code_remap = Some(remap);
            DomainInfo {
                values: values.into(),
                counts: new_counts,
            }
        });

        // ---- statistics -------------------------------------------------
        // Exact maintenance via the per-position occurrence counts; touched
        // relations take their fact/block cardinalities from the new base.
        let statistics_patch: Option<Statistics> = self.statistics.get().map(|stats| {
            let mut relations = stats.relations.clone();
            for fact in changes.inserted() {
                let rel = &mut relations[fact.relation().index()];
                let counts = Arc::make_mut(&mut rel.counts);
                for (pos, value) in fact.values().iter().enumerate() {
                    let count = counts[pos].entry(value.clone()).or_insert(0);
                    *count += 1;
                    if *count == 1 {
                        rel.distinct[pos] += 1;
                    }
                }
            }
            for fact in changes.removed() {
                let rel = &mut relations[fact.relation().index()];
                let counts = Arc::make_mut(&mut rel.counts);
                for (pos, value) in fact.values().iter().enumerate() {
                    let count = counts[pos]
                        .get_mut(value)
                        .expect("removed facts were counted in the snapshot statistics");
                    *count -= 1;
                    if *count == 0 {
                        counts[pos].remove(value);
                        rel.distinct[pos] -= 1;
                    }
                }
            }
            for (rel, relation_stats) in relations.iter_mut().enumerate() {
                if touched[rel] {
                    relation_stats.fact_count = base.by_relation[rel].len();
                    relation_stats.block_count = base.blocks_by_relation[rel].len();
                }
            }
            Statistics { relations }
        });

        // ---- position hash indexes --------------------------------------
        // Every cached index is carried over: surviving ids are remapped in
        // place (`HashMap::clone` copies the table without rehashing keys),
        // inserted facts are hashed into their buckets. Buckets stay in
        // ascending id order, as `PositionIndex::build` produces them.
        let ensure_sorted = |ids: &mut Vec<u32>| {
            if !ids.windows(2).all(|w| w[0] <= w[1]) {
                ids.sort_unstable();
            }
        };
        let old_position_indexes = self
            .position_indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut position_indexes = FxHashMap::default();
        for (&(relation, posbits), old_index) in &old_position_indexes {
            if !touched[relation.index()] && ids_stable {
                // Untouched relation, stable ids: the whole index is still
                // exact — share the allocation instead of cloning buckets.
                position_indexes.insert((relation, posbits), old_index.clone());
                continue;
            }
            let positions = &old_index.positions;
            let mut buckets = old_index.buckets.clone();
            if touched[relation.index()] {
                buckets.retain(|_, ids| {
                    let mut mapped: Vec<u32> = ids
                        .iter()
                        .filter_map(|&old| {
                            let new_id = mapping[old as usize];
                            (new_id != GONE).then_some(new_id)
                        })
                        .collect();
                    if mapped.is_empty() {
                        return false;
                    }
                    ensure_sorted(&mut mapped);
                    *ids = mapped.into();
                    true
                });
                let mut additions: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
                for (slot, fact) in changes.inserted().iter().enumerate() {
                    if fact.relation() != relation || inserted_ids[slot] == GONE {
                        continue;
                    }
                    let key: Vec<Value> =
                        positions.iter().map(|&p| fact.value(p).clone()).collect();
                    additions.entry(key).or_default().push(inserted_ids[slot]);
                }
                for (key, mut ids) in additions {
                    match buckets.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut entry) => {
                            let mut merged = entry.get().to_vec();
                            merged.append(&mut ids);
                            ensure_sorted(&mut merged);
                            entry.insert(merged.into());
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            ensure_sorted(&mut ids);
                            entry.insert(ids.into());
                        }
                    }
                }
            } else {
                // Untouched relation, but some fact ids shifted (a block
                // reorder, or an insert/removal earlier in the walk): remap
                // in place (bucket membership is unchanged).
                for ids in buckets.values_mut() {
                    let mut mapped: Vec<u32> = ids
                        .iter()
                        .map(|&old| {
                            let new_id = mapping[old as usize];
                            debug_assert_ne!(new_id, GONE, "untouched relation lost a fact");
                            new_id
                        })
                        .collect();
                    ensure_sorted(&mut mapped);
                    *ids = mapped.into();
                }
            }
            position_indexes.insert(
                (relation, posbits),
                Arc::new(PositionIndex {
                    positions: positions.clone(),
                    buckets,
                    empty: old_index.empty.clone(),
                }),
            );
        }

        // ---- columnar view ----------------------------------------------
        // Untouched relations share their column arrays (or take a pure
        // integer remap when the dictionary changed) — but only while their
        // ROW ORDER survived: detaching an emptied block swap-removes it,
        // which permutes the global block walk and can reorder the facts of
        // relations the delta never touched. Reordered or touched relations
        // are re-rowed from old rows + dictionary lookups for inserted facts.
        let rows_stable = |rel: usize| {
            let new_ids = &base.by_relation[rel];
            let old_ids = &self.by_relation[rel];
            new_ids.len() == old_ids.len()
                && new_ids
                    .iter()
                    .zip(old_ids.iter())
                    .all(|(&new_id, &old_id)| old_of_new[new_id as usize] == old_id)
        };
        let columnar_patch: Option<Columnar> = self.columnar.get().map(|columnar| {
            let domain = domain_patch
                .as_ref()
                .expect("a cached columnar view implies a cached active domain");
            let remap_code = |code: u32| match &code_remap {
                None => code,
                Some(remap) => {
                    let new_code = remap[code as usize];
                    debug_assert_ne!(new_code, GONE, "a live column referenced a dead code");
                    new_code
                }
            };
            let relations = (0..self.arities.len())
                .map(|rel| {
                    let relation = RelationId::from_index(rel);
                    let old_columns = columnar.relation_arc(relation);
                    if !touched[rel] && rows_stable(rel) {
                        return match &code_remap {
                            None => old_columns,
                            Some(_) => Arc::new(RelationColumns::from_columns(
                                old_columns
                                    .columns()
                                    .iter()
                                    .map(|col| col.iter().map(|&c| remap_code(c)).collect())
                                    .collect(),
                                old_columns.row_count(),
                            )),
                        };
                    }
                    let fact_ids = &base.by_relation[rel];
                    let old_fact_ids = &self.by_relation[rel];
                    let arity = self.arities[rel];
                    let mut columns: Vec<Vec<u32>> =
                        vec![Vec::with_capacity(fact_ids.len()); arity];
                    for &fid in fact_ids {
                        let old = old_of_new[fid as usize];
                        if old != GONE {
                            let old_row = old_fact_ids
                                .binary_search(&old)
                                .expect("surviving fact was listed in the old relation");
                            for (pos, column) in columns.iter_mut().enumerate() {
                                column.push(remap_code(old_columns.column(pos)[old_row]));
                            }
                        } else {
                            let fact = &base.facts[fid as usize];
                            for (pos, column) in columns.iter_mut().enumerate() {
                                let code = domain
                                    .values
                                    .binary_search(fact.value(pos))
                                    .expect("inserted values were merged into the dictionary")
                                    as u32;
                                column.push(code);
                            }
                        }
                    }
                    Arc::new(RelationColumns::from_columns(columns, fact_ids.len()))
                })
                .collect();
            Columnar::from_parts(domain.values.clone(), relations)
        });

        // ---- code indexes -----------------------------------------------
        // Valid only while both the dictionary and the relation's rows
        // (content AND order — buckets hold row numbers) are unchanged;
        // anything else is dropped and lazily rebuilt from the patched
        // columnar view.
        let mut code_indexes = FxHashMap::default();
        if columnar_patch.is_some() && code_remap.is_none() {
            let old_code_indexes = self
                .code_indexes
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            for (&(relation, packed), code_index) in &old_code_indexes {
                if !touched[relation.index()] && rows_stable(relation.index()) {
                    code_indexes.insert((relation, packed), code_index.clone());
                }
            }
        }

        // ---- assembly ---------------------------------------------------
        let active_domain = OnceLock::new();
        if let Some(info) = domain_patch {
            let _ = active_domain.set(info);
        }
        let statistics = OnceLock::new();
        if let Some(stats) = statistics_patch {
            let _ = statistics.set(stats);
        }
        let columnar = OnceLock::new();
        if let Some(view) = columnar_patch {
            let _ = columnar.set(view);
        }
        DatabaseIndex {
            facts: base.facts,
            fact_blocks: base.fact_blocks,
            by_relation: base.by_relation,
            blocks_by_relation: base.blocks_by_relation,
            arities: base.arities,
            active_domain,
            statistics,
            position_indexes: Mutex::new(position_indexes),
            columnar,
            code_indexes: Mutex::new(code_indexes),
        }
    }
}

impl fmt::Debug for DatabaseIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatabaseIndex({} facts)", self.facts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn figure1() -> UncertainDatabase {
        let schema = Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("C", ["PODS", "2016", "Rome"]).unwrap();
        db.insert_values("C", ["PODS", "2016", "Paris"]).unwrap();
        db.insert_values("C", ["KDD", "2017", "Rome"]).unwrap();
        db.insert_values("R", ["PODS", "A"]).unwrap();
        db.insert_values("R", ["KDD", "A"]).unwrap();
        db.insert_values("R", ["KDD", "B"]).unwrap();
        db
    }

    #[test]
    fn position_sets_behave_like_sets() {
        let s = PositionSet::from_positions([2, 0]);
        assert!(s.contains(0) && s.contains(2) && !s.contains(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(PositionSet::empty().is_empty());
        assert_eq!(PositionSet::single(3).iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn snapshot_lists_facts_and_blocks_per_relation() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(index.fact_count(), 6);
        assert_eq!(index.relation_fact_ids(c).len(), 3);
        assert_eq!(index.relation_fact_ids(r).len(), 3);
        assert_eq!(index.relation_block_ids(c).len(), 2);
        assert_eq!(index.relation_block_ids(r).len(), 2);
        for &fid in index.relation_fact_ids(c) {
            let fact = index.fact(FactId(fid));
            assert_eq!(fact.relation(), c);
            let block = db.block(index.block_of(FactId(fid)));
            assert!(block.contains(fact));
        }
        let listed: Vec<_> = index.relation_blocks(&db, r).collect();
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().all(|b| b.relation() == r));
    }

    #[test]
    fn position_probes_find_exactly_the_matching_facts() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        // Index C on its third column (the city).
        let city = index.position_index(c, PositionSet::single(2));
        assert_eq!(city.candidates(&[Value::str("Rome")]).len(), 2);
        assert_eq!(city.candidates(&[Value::str("Paris")]).len(), 1);
        assert_eq!(city.candidates(&[Value::str("Tokyo")]).len(), 0);
        assert_eq!(city.key_count(), 2);
        // Index C on (conference, city).
        let pair = index.position_index(c, PositionSet::from_positions([0, 2]));
        assert_eq!(pair.positions(), &[0, 2]);
        let hits = pair.candidates(&[Value::str("PODS"), Value::str("Rome")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(index.fact(FactId(hits[0])).value(1), &Value::str("2016"));
        // The same subset is served from the cache (same Arc).
        let again = index.position_index(c, PositionSet::from_positions([0, 2]));
        assert!(Arc::ptr_eq(&pair, &again));
    }

    #[test]
    fn empty_position_set_buckets_everything_under_the_empty_key() {
        let db = figure1();
        let index = db.index();
        let r = db.schema().relation_id("R").unwrap();
        let all = index.position_index(r, PositionSet::empty());
        assert_eq!(all.candidates(&[]).len(), 3);
    }

    #[test]
    fn statistics_report_cardinalities_and_distinct_counts() {
        let db = figure1();
        let index = db.index();
        let c = db.schema().relation_id("C").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let stats = index.statistics();
        assert_eq!(stats.relation(c).fact_count(), 3);
        assert_eq!(stats.relation(c).block_count(), 2);
        // C columns: {PODS, KDD}, {2016, 2017}, {Rome, Paris}.
        assert_eq!(stats.relation(c).distinct_counts(), &[2, 2, 2]);
        assert_eq!(stats.relation(r).distinct_count(0), Some(2));
        assert_eq!(stats.relation(r).distinct_count(1), Some(2));
        assert_eq!(stats.relation(r).distinct_count(7), None);
        assert_eq!(stats.iter().count(), 2);
        // Served from the cache: same allocation on repeated calls.
        assert!(std::ptr::eq(stats, index.statistics()));
    }

    #[test]
    fn active_domain_is_sorted_and_complete() {
        let db = figure1();
        let index = db.index();
        let dom = index.active_domain();
        assert_eq!(dom.len(), 8);
        assert!(dom.windows(2).all(|w| w[0] < w[1]));
        let reference: Vec<Value> = db.active_domain().into_iter().collect();
        assert_eq!(dom, reference.as_slice());
    }

    #[test]
    fn snapshots_are_cached_and_invalidated_by_mutation() {
        let mut db = figure1();
        let a = db.index();
        let b = db.index();
        assert!(Arc::ptr_eq(&a, &b));
        db.insert_values("R", ["VLDB", "A"]).unwrap();
        let c = db.index();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.fact_count(), 7);
        // Removal invalidates too.
        let r = db.schema().relation_id("R").unwrap();
        db.remove_fact(&Fact::new(r, vec![Value::str("VLDB"), Value::str("A")]));
        let d = db.index();
        assert_eq!(d.fact_count(), 6);
        // A clone shares the cached snapshot until either side mutates.
        let clone = db.clone();
        assert!(Arc::ptr_eq(&clone.index(), &db.index()));
    }

    #[test]
    fn delta_patch_remaps_untouched_relations_when_ids_shift() {
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("S", ["b", "1"]).unwrap();
        let index = db.index();
        let s = db.schema().relation_id("S").unwrap();
        let key = index.position_index(s, PositionSet::single(0));
        assert_eq!(key.candidates(&[Value::str("b")]), &[1]);
        // A second alternative joins R's existing block: every fact after
        // that block shifts by one id, including untouched S's.
        db.insert_values("R", ["a", "2"]).unwrap();
        let patched = db.index();
        let key = patched.position_index(s, PositionSet::single(0));
        assert_eq!(key.candidates(&[Value::str("b")]), &[2]);
        assert_eq!(patched.fact(FactId(2)).value(0), &Value::str("b"));
    }

    #[test]
    fn delta_patch_rerows_untouched_relations_when_blocks_reorder() {
        // Blocks walk [R(a), S(x), S(y)]. Emptying R's block swap-removes
        // it, moving S(y) to the front of the walk: untouched S's rows are
        // PERMUTED, not shifted, so its cached columns and row-numbered
        // code indexes must be re-rowed, not carried over.
        let schema = Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        db.insert_values("S", ["x", "1"]).unwrap();
        db.insert_values("S", ["y", "2"]).unwrap();
        let s = db.schema().relation_id("S").unwrap();
        let warm = db.index();
        let _ = warm.columnar();
        let _ = warm.code_index(s, &[0]);
        let r = db.schema().relation_id("R").unwrap();
        assert!(db.remove_fact(&Fact::new(r, vec![Value::str("a"), Value::str("1")])));
        let patched = db.index();
        // New walk: S(y) took the detached block's slot, then S(x).
        assert_eq!(patched.fact(FactId(0)).value(0), &Value::str("y"));
        assert_eq!(patched.fact(FactId(1)).value(0), &Value::str("x"));
        let columnar = patched.columnar();
        let decode = |row: usize| {
            columnar
                .dictionary()
                .value(columnar.relation(s).column(0)[row])
        };
        assert_eq!(decode(0), &Value::str("y"));
        assert_eq!(decode(1), &Value::str("x"));
        let code_index = patched.code_index(s, &[0]);
        let y_code = columnar.dictionary().code_of(&Value::str("y")).unwrap();
        assert_eq!(code_index.candidates(CodeIndex::pack(&[y_code])), &[0]);
    }
}
