//! Section 7 in action: BID probabilistic databases, `IsSafe`, safe-plan
//! evaluation, and the Proposition 1 bridge back to certainty.
//!
//! Run with `cargo run --example probabilistic_conferences`.

use cqa::prob::bridge::probability_is_one;
use cqa::prob::eval::{probability_exact, probability_monte_carlo, probability_safe};
use cqa::prob::{is_safe, BidDatabase};
use cqa::query::catalog;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let query = catalog::conference().query;
    let db = catalog::conference_database();

    // Uniform-repair view: every block's facts are equally likely.
    let uniform = BidDatabase::uniform_over_repairs(&db);
    println!("query: {query}");
    println!("IsSafe(q) = {}", is_safe(&query));
    println!(
        "Pr(q) exhaustive     = {:.4}",
        probability_exact(&uniform, &query)
    );
    println!(
        "Pr(q) safe plan      = {:.4}",
        probability_safe(&uniform, &query).unwrap()
    );
    let mut rng = StdRng::seed_from_u64(1);
    println!(
        "Pr(q) Monte Carlo    = {:.4}  (10k samples)",
        probability_monte_carlo(&uniform, &query, 10_000, &mut rng)
    );
    println!(
        "Pr(q) = 1?           = {}  (Proposition 1, via certainty)",
        probability_is_one(&uniform, &query).unwrap()
    );

    // Now use asymmetric probabilities: the chair is 90% sure PODS 2016 is in
    // Rome, and 60% sure KDD is rank A (with 40% rank B).
    let c = db.schema().relation_id("C").unwrap();
    let r = db.schema().relation_id("R").unwrap();
    let fact = |rel, values: &[&str]| {
        cqa_data::Fact::new(
            rel,
            values.iter().map(cqa_data::Value::str).collect::<Vec<_>>(),
        )
    };
    let weighted = BidDatabase::new(
        db.clone(),
        [
            (fact(c, &["PODS", "2016", "Rome"]), 0.9),
            (fact(c, &["PODS", "2016", "Paris"]), 0.1),
            (fact(r, &["KDD", "A"]), 0.6),
            (fact(r, &["KDD", "B"]), 0.4),
        ],
    )
    .unwrap();
    println!("\nwith asymmetric probabilities (90% Rome, 60% KDD rank A):");
    let exact = probability_exact(&weighted, &query);
    let safe = probability_safe(&weighted, &query).unwrap();
    println!("Pr(q) exhaustive     = {exact:.4}");
    println!("Pr(q) safe plan      = {safe:.4}");
    println!(
        "Pr(q) = 1?           = {}  (some block is still uncertain)",
        probability_is_one(&weighted, &query).unwrap()
    );

    // An unsafe query: the safe plan refuses, the exhaustive evaluator and the
    // sampler still work (Theorem 5 says no polynomial exact algorithm exists
    // unless FP = ♯P).
    let unsafe_query = catalog::fo_path2().query;
    println!(
        "\nunsafe query {unsafe_query}: IsSafe = {}",
        is_safe(&unsafe_query)
    );
    let mut small = cqa_data::UncertainDatabase::new(unsafe_query.schema().clone());
    for (rel, a, b) in [
        ("R", "a", "b"),
        ("R", "a", "b2"),
        ("S", "b", "t"),
        ("S", "b2", "t"),
    ] {
        small.insert_values(rel, [a, b]).unwrap();
    }
    let bid = BidDatabase::uniform_over_repairs(&small);
    println!(
        "safe plan refuses:   {}",
        probability_safe(&bid, &unsafe_query).is_err()
    );
    println!(
        "exhaustive Pr(q)     = {:.4}",
        probability_exact(&bid, &unsafe_query)
    );
}
