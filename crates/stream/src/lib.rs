//! # cqa-stream — incremental certain-answer maintenance under fact churn
//!
//! The paper's central object, the certain answers of a conjunctive query
//! over all primary-key repairs, is an expensive aggregate: deciding it from
//! scratch enumerates every possible answer and decides certainty per
//! candidate. But the **block structure** of primary-key repairs localizes
//! the damage a single mutation can do — a repair chooses one fact per
//! block, so the verdict of a candidate tuple `t` is a function of the
//! contents of exactly those blocks that hold at least one fact matching an
//! atom pattern of `q(t)` (a fact that no pattern matches can never appear
//! in a witnessing valuation, and a block without any matching fact
//! contributes the same "nothing" to every repair).
//!
//! This crate exploits that locality:
//!
//! * [`MaterializedView`] — the current certain/possible answer sets of one
//!   registered query, plus per-candidate **provenance**: the set of
//!   [`BlockKey`]s (relation + primary-key value) whose blocks the
//!   candidate's verdict depends on — atoms that constrain nothing are
//!   folded into one relation-wide entry so provenance stays O(1) per atom
//!   — with reverse indexes from block key and relation to dependent
//!   candidates.
//! * [`ViewMaintainer`] — consumes the `cqa_data` delta log
//!   ([`cqa_data::ChangeSet`]: fact inserts, fact removals, block removals)
//!   and repairs the view **incrementally**: only candidates whose
//!   provenance intersects the touched blocks are re-decided, new
//!   candidates introduced by an inserted fact are discovered through a
//!   compiled `cqa-exec` plan of the partially grounded query, and past a
//!   damage threshold ([`view_threshold`], mirroring `CQA_DELTA_THRESHOLD`)
//!   the maintainer falls back to the full re-evaluation it would otherwise
//!   beat. When the damage is large and a [`cqa_par::ParPool`] is attached,
//!   the retouched-candidate set is sharded across workers with a
//!   deterministic in-order merge.
//!
//! The serving layer (`cqa-serve`) registers views via `\subscribe`,
//! repairs them inside the write path, and publishes the repaired readings
//! **atomically with the epoch pointer swap**, so a reader of a view never
//! observes answers from a stale epoch. The property suite
//! (`tests/stream.rs`) holds the repaired view byte-identical to a
//! from-scratch recompute after every delta, at 1, 2 and 7 threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod maintain;
mod view;

pub use maintain::{view_threshold, RepairOutcome, ViewMaintainer, DEFAULT_VIEW_THRESHOLD};
pub use view::{BlockKey, MaterializedView, Provenance};
