//! `certainty` — a command-line tool for certain query answering over
//! uncertain databases.
//!
//! ```text
//! certainty classify <file.cqa>              classify every query in the document
//! certainty certain <file.cqa> [--query=N]   decide CERTAINTY for the document's queries
//! certainty answers <file.cqa>               certain + possible answers (non-Boolean queries)
//! certainty rewrite <file.cqa> [--sql]       print the certain FO rewriting (and SQL)
//! certainty explain <file.cqa> [--analyze]   print the compiled physical plans (query + rewriting)
//! certainty probability <file.cqa>           Pr(q) under the uniform-repair distribution
//! certainty repairs <file.cqa>               list/count repairs of the database
//! certainty attack-graph <file.cqa> [--dot]  print the attack graph (optionally as DOT)
//! certainty serve <file.cqa> [--threads=N] [--listen=ADDR] [--max-inflight=N] [--deadline-ms=N]
//!                                            answer newline-delimited queries concurrently
//!                                            (stdin by default; a TCP/HTTP server with --listen)
//! certainty stats <file.cqa>                 answer the document's queries, then dump all metrics
//! certainty save <file.cqa> <out.cqdb>       persist the database in the columnar store format
//! certainty ingest <file.csv> <out.cqdb> --relation=R [--key-prefix=K]
//!                                            ingest CSV rows as facts of one relation, then persist
//! ```
//!
//! Every document command also accepts `--db=<path.cqdb>`: the facts come
//! from a previously saved columnar store (see `certainty save` /
//! `certainty ingest`) instead of the document's fact lines, while the
//! document still provides the relation declarations (which must match the
//! store's manifest) and the queries.
//!
//! `explain --analyze` additionally **runs** each plan with a per-operator
//! trace sink installed and prints the actual row/probe/wave counts next to
//! the cost-model estimates.
//!
//! `serve` freezes the document's database into a snapshot, reads one query
//! per line from stdin (`name[(vars)] :- atoms`, or a bare atom list), and
//! answers the stream concurrently on a work-stealing pool
//! (`cqa_par::BatchEngine`) in chunks — results print in input order
//! regardless of which worker finished first. A `\stats` input line reports
//! qps, latency percentiles and cache hit rates mid-stream (also printed to
//! stderr after every flushed chunk).
//!
//! With `--listen=ADDR` (e.g. `--listen=127.0.0.1:7878`), `serve` instead
//! starts the concurrent network server of the `cqa-serve` crate: many
//! clients at once, writes (`\insert` / `\remove` / `\remove-block`) that
//! publish MVCC-style epoch snapshots without blocking in-flight readers,
//! admission control (`--max-inflight=N`), per-query deadlines
//! (`--deadline-ms=N`), and HTTP `GET /metrics` + `POST /query` on the same
//! port. The line protocol is documented in `cqa_serve::protocol`.
//!
//! The input format is documented in the `cqa-parser` crate (and in
//! `README.md`).

use cqa_core::answers::certain_answers;
use cqa_core::classify::classify;
use cqa_core::fo::{certain_rewriting, certain_rewriting_open, sql::to_sql};
use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
use cqa_core::AttackGraph;
use cqa_exec::{FoPlan, QueryPlan};
use cqa_obs::TraceSink;
use cqa_par::{BatchEngine, BatchOutcome, ParPool};
use cqa_parser::{dot, parse_document, parse_query_line, Document};
use cqa_prob::eval::probability_over_repairs;
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> &'static str {
    "usage: certainty <classify|certain|answers|rewrite|explain|probability|repairs|attack-graph|serve|stats|save|ingest> <file> [out.cqdb] [--sql] [--dot] [--analyze] [--query=NAME] [--threads=N] [--listen=ADDR] [--max-inflight=N] [--deadline-ms=N] [--db=PATH] [--relation=NAME] [--key-prefix=K]"
}

fn load(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_document(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pending `serve` queries are flushed as one concurrent batch once this
/// many have accumulated (and at end of stream / on `\stats`), so long
/// streams get results and stats lines while still being read.
const SERVE_CHUNK: usize = 512;

/// Answers the pending entries as one batch and prints the results in
/// input order, interleaving parse errors where their lines were.
fn flush_serve(
    engine: &BatchEngine,
    entries: &mut Vec<(String, Result<cqa_query::ConjunctiveQuery, String>)>,
    served: &mut usize,
) {
    if entries.is_empty() {
        return;
    }
    let batch: Vec<(String, cqa_query::ConjunctiveQuery)> = entries
        .iter()
        .filter_map(|(name, parsed)| parsed.as_ref().ok().map(|q| (name.clone(), q.clone())))
        .collect();
    *served += batch.len();
    let mut results = engine.run(batch).into_iter();
    for (name, parsed) in entries.drain(..) {
        if let Err(e) = parsed {
            println!("{name}: error: {e}");
            continue;
        }
        let result = results.next().expect("one result per parsed query");
        match result.outcome {
            BatchOutcome::Boolean {
                certain,
                possible,
                solver,
            } => println!(
                "{}: {} (possible: {possible}, solver: {solver})",
                result.name,
                if certain { "certain" } else { "not certain" },
            ),
            BatchOutcome::Answers(sets) => {
                println!(
                    "{}: {} certain / {} possible",
                    result.name,
                    sets.certain.len(),
                    sets.possible.len()
                );
                for tuple in &sets.certain {
                    let rendered: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                    println!("  certain: ({})", rendered.join(", "));
                }
            }
            BatchOutcome::Error(e) => println!("{}: error: {e}", result.name),
        }
    }
}

/// One serving-stats line, shared with the network server's `\stats`
/// command (`inflight` is always 0 here: the stdin loop has no admission
/// control).
fn serve_stats_line(engine: &BatchEngine, served: usize, started: Instant) -> String {
    cqa_serve::stats_line(engine, served, started, 0, 0, 0)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (flags, positional): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.starts_with("--"));
    let mut query_filter: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut max_inflight: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut db_path: Option<String> = None;
    let mut relation: Option<String> = None;
    let mut key_prefix: usize = 1;
    let mut flag_names: Vec<String> = Vec::new();
    for flag in flags {
        match flag.split_once('=') {
            Some(("--query", value)) => query_filter = Some(value.to_string()),
            Some(("--threads", value)) => {
                threads = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--threads expects a number, got `{value}`"))?,
                )
            }
            Some(("--listen", value)) => listen = Some(value.to_string()),
            Some(("--max-inflight", value)) => {
                max_inflight = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--max-inflight expects a number, got `{value}`"))?,
                )
            }
            Some(("--deadline-ms", value)) => {
                deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--deadline-ms expects a number, got `{value}`"))?,
                )
            }
            Some(("--db", value)) => db_path = Some(value.to_string()),
            Some(("--relation", value)) => relation = Some(value.to_string()),
            Some(("--key-prefix", value)) => {
                key_prefix = value
                    .parse()
                    .map_err(|_| format!("--key-prefix expects a number, got `{value}`"))?
            }
            Some((name, _)) => flag_names.push(name.to_string()),
            None => flag_names.push(flag.clone()),
        }
    }
    let (command, path, out) = match positional.as_slice() {
        [command, path] => (command.as_str(), path.as_str(), None),
        [command, path, out] => (command.as_str(), path.as_str(), Some(out.as_str())),
        _ => return Err(usage().to_string()),
    };
    if command == "ingest" {
        let out = out
            .ok_or("ingest needs an output path: certainty ingest <file.csv> <out.cqdb> --relation=NAME [--key-prefix=K]")?;
        let relation = relation.ok_or("ingest needs --relation=NAME")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let db = cqa_parser::csv::database_from_csv(&text, &relation, key_prefix)
            .map_err(|e| format!("{path}: {e}"))?;
        let summary = cqa_data::store::save(&db, out).map_err(|e| format!("{out}: {e}"))?;
        let rel = db.schema().require(&relation).map_err(|e| e.to_string())?;
        println!(
            "ingested {} facts in {} blocks into {relation}({} columns, key prefix {key_prefix})",
            db.fact_count(),
            db.block_count(),
            db.schema().relation(rel).arity(),
        );
        println!("saved {out}: {summary}");
        return Ok(());
    }
    let mut doc = load(path)?;
    if let Some(db_path) = &db_path {
        let loaded = cqa_data::store::load(db_path).map_err(|e| format!("{db_path}: {e}"))?;
        let compatible = doc.schema.len() == loaded.schema().len()
            && doc
                .schema
                .iter()
                .zip(loaded.schema().iter())
                .all(|((_, a), (_, b))| a.name == b.name && a.signature == b.signature);
        if !compatible {
            return Err(format!(
                "--db {db_path}: the stored schema manifest does not match the document's \
                 relation declarations"
            ));
        }
        doc.database = loaded;
    }
    let doc = doc;
    if doc.queries.is_empty() && !matches!(command, "repairs" | "serve" | "save") {
        return Err("the document declares no `certain ... :- ...` query".to_string());
    }
    let selected: Vec<&(String, cqa_query::ConjunctiveQuery)> = doc
        .queries
        .iter()
        .filter(|(name, _)| query_filter.as_deref().is_none_or(|f| f == name))
        .collect();
    let has_flag = |name: &str| flag_names.iter().any(|f| f == name);

    match command {
        "save" => {
            let out =
                out.ok_or("save needs an output path: certainty save <file.cqa> <out.cqdb>")?;
            let summary =
                cqa_data::store::save(&doc.database, out).map_err(|e| format!("{out}: {e}"))?;
            println!("saved {out}: {summary}");
        }
        "classify" => {
            for (name, query) in &selected {
                let c = classify(query).map_err(|e| e.to_string())?;
                println!("{name}: {}", c.class);
            }
        }
        "certain" => {
            for (name, query) in &selected {
                if query.is_boolean() {
                    let engine = CertaintyEngine::new(query).map_err(|e| e.to_string())?;
                    let verdict = engine.is_certain(&doc.database);
                    println!(
                        "{name}: {} (solver: {})",
                        if verdict { "certain" } else { "not certain" },
                        engine.solver_name()
                    );
                } else {
                    println!("{name}: query has free variables, use `answers`");
                }
            }
        }
        "answers" => {
            for (name, query) in &selected {
                let sets = certain_answers(query, &doc.database).map_err(|e| e.to_string())?;
                println!(
                    "{name}: {} certain / {} possible",
                    sets.certain.len(),
                    sets.possible.len()
                );
                for tuple in &sets.certain {
                    let rendered: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                    println!("  certain: ({})", rendered.join(", "));
                }
            }
        }
        "rewrite" => {
            for (name, query) in &selected {
                match certain_rewriting(query) {
                    Ok(formula) => {
                        println!("{name}: {}", formula.display(query.schema()));
                        if has_flag("--sql") {
                            println!(
                                "{}",
                                to_sql(&formula, query.schema()).map_err(|e| e.to_string())?
                            );
                        }
                    }
                    Err(e) => println!("{name}: no certain first-order rewriting ({e})"),
                }
            }
        }
        "explain" => {
            let analyze = has_flag("--analyze");
            let index = doc.database.index();
            let stats = index.statistics();
            for (name, query) in &selected {
                println!(
                    "{name}: physical plan over {} facts / {} blocks",
                    doc.database.fact_count(),
                    doc.database.block_count()
                );
                let plan = QueryPlan::compile(query, Some(stats));
                if analyze {
                    let sink = Arc::new(TraceSink::new(plan.trace_ops()));
                    let answers = plan.prepare(&index).with_trace(sink.clone()).answers();
                    print!("{}", plan.explain_analyze(&sink));
                    println!("  ({} answer(s) on the database)", answers.len());
                } else {
                    print!("{}", plan.explain());
                }
                if query.is_boolean() {
                    match certain_rewriting(query) {
                        Ok(formula) => {
                            let fo = FoPlan::compile(&formula, query.schema(), Some(stats));
                            println!("{name}: certain rewriting plan (Theorem 1)");
                            if analyze {
                                let sink = Arc::new(TraceSink::new(fo.trace_ops()));
                                let verdict = fo.prepare(&index).with_trace(sink.clone()).eval();
                                print!("{}", fo.explain_analyze(&sink));
                                println!(
                                    "  (verdict: {})",
                                    if verdict { "certain" } else { "not certain" }
                                );
                            } else {
                                print!("{}", fo.explain());
                            }
                        }
                        Err(e) => println!("{name}: no certain first-order rewriting ({e})"),
                    }
                } else {
                    match certain_rewriting_open(query) {
                        Ok(formula) => {
                            let fo = FoPlan::compile(&formula, query.schema(), Some(stats));
                            println!(
                                "{name}: open certain rewriting plan (Theorem 1; candidate \
                                 answers decided in batch)"
                            );
                            if analyze {
                                let candidates: Vec<Vec<cqa_data::Value>> =
                                    plan.prepare(&index).answers().into_iter().collect();
                                let sink = Arc::new(TraceSink::new(fo.trace_ops()));
                                let verdicts = fo
                                    .prepare(&index)
                                    .with_trace(sink.clone())
                                    .eval_tuples(query.free_vars(), &candidates);
                                print!("{}", fo.explain_analyze(&sink));
                                println!(
                                    "  ({} of {} candidate(s) certain)",
                                    verdicts.iter().filter(|&&v| v).count(),
                                    candidates.len()
                                );
                            } else {
                                print!("{}", fo.explain());
                            }
                        }
                        Err(e) => println!(
                            "{name}: no certain first-order rewriting ({e}); candidate answers \
                             decided per tuple by the classified solvers"
                        ),
                    }
                }
            }
        }
        "probability" => {
            for (name, query) in &selected {
                let p = probability_over_repairs(&doc.database, query);
                println!("{name}: Pr(q) = {p:.6} under the uniform-repair distribution");
            }
        }
        "repairs" => match doc.database.repair_count() {
            Some(c) if c <= 64 => {
                println!("{c} repairs:");
                for (i, repair) in doc.database.repairs().enumerate() {
                    println!("--- repair {} ---", i + 1);
                    print!("{repair}");
                }
            }
            Some(c) => println!("{c} repairs (too many to list)"),
            None => println!(
                "more than 2^128 repairs (log2 ≈ {:.1})",
                doc.database.repair_count_log2()
            ),
        },
        "serve" if listen.is_some() => {
            let addr = listen.expect("guarded by the match arm");
            let config = cqa_serve::ServerConfig {
                threads,
                max_inflight: max_inflight.unwrap_or(64),
                deadline: deadline_ms.map(std::time::Duration::from_millis),
                ..cqa_serve::ServerConfig::default()
            };
            let server = cqa_serve::Server::bind(doc.database.clone(), &addr, config)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = server.local_addr().map_err(|e| e.to_string())?;
            eprintln!(
                "serving on {local} ({} worker threads); line protocol per connection, \
                 HTTP GET /metrics + POST /query on the same port",
                server.pool().thread_count()
            );
            server.run().map_err(|e| e.to_string())?;
        }
        "serve" => {
            let pool = match threads {
                Some(n) => ParPool::new(n),
                None => ParPool::with_available_parallelism(),
            };
            let thread_count = pool.thread_count();
            let engine = BatchEngine::new(doc.database.snapshot(), pool);
            let started = Instant::now();
            let mut served = 0usize;
            // Read the newline-delimited stream in chunks, answering each
            // chunk as one concurrent batch; parse failures keep their
            // place in the output without stopping the stream. A `\stats`
            // line flushes the pending chunk and reports serving metrics.
            let mut entries: Vec<(String, Result<cqa_query::ConjunctiveQuery, String>)> =
                Vec::new();
            for (i, line) in std::io::stdin().lock().lines().enumerate() {
                let line = line.map_err(|e| format!("stdin: {e}"))?;
                let text = line.split('#').next().unwrap_or("").trim();
                if text == "\\stats" {
                    flush_serve(&engine, &mut entries, &mut served);
                    println!("{}", serve_stats_line(&engine, served, started));
                    continue;
                }
                let text = text.strip_prefix("certain ").unwrap_or(text).trim();
                if text.is_empty() {
                    continue;
                }
                match parse_query_line(&doc.schema, text, i + 1) {
                    Ok((name, query)) => entries.push((name, Ok(query))),
                    Err(e) => entries.push((format!("q{}", i + 1), Err(e.to_string()))),
                }
                if entries.len() >= SERVE_CHUNK {
                    flush_serve(&engine, &mut entries, &mut served);
                    eprintln!("{}", serve_stats_line(&engine, served, started));
                }
            }
            flush_serve(&engine, &mut entries, &mut served);
            eprintln!("served {served} queries on {thread_count} threads");
            eprintln!("{}", serve_stats_line(&engine, served, started));
        }
        "stats" => {
            for (name, query) in &selected {
                if query.is_boolean() {
                    let engine = CertaintyEngine::new(query).map_err(|e| e.to_string())?;
                    println!(
                        "{name}: certain={} possible={} (solver: {})",
                        engine.is_certain(&doc.database),
                        engine.is_possible(&doc.database),
                        engine.solver_name()
                    );
                } else {
                    let sets = certain_answers(query, &doc.database).map_err(|e| e.to_string())?;
                    println!(
                        "{name}: {} certain / {} possible",
                        sets.certain.len(),
                        sets.possible.len()
                    );
                }
            }
            println!();
            println!(
                "database: {} facts, epoch {}, {} pending delta(s), threshold {}",
                doc.database.fact_count(),
                doc.database.epoch(),
                doc.database.pending_delta_len(),
                doc.database.delta_threshold(),
            );
            println!("metrics after answering {} query(ies):", selected.len());
            print!("{}", cqa_obs::Registry::global().snapshot().render());
        }
        "attack-graph" => {
            for (name, query) in &selected {
                let graph = AttackGraph::build(query).map_err(|e| e.to_string())?;
                if has_flag("--dot") {
                    println!("{}", dot::attack_graph_to_dot(&graph));
                } else {
                    println!("attack graph of {name}:");
                    print!("{}", graph.render());
                }
            }
        }
        _ => return Err(usage().to_string()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
