//! Persistence tests against the committed on-disk fixture.
//!
//! `tests/fixtures/figure1.cqdb` is the Figure 1 database of the paper,
//! written once by `certainty save tests/fixtures/figure1.cqa
//! tests/fixtures/figure1.cqdb` and committed. Loading it pins the store
//! format: any encoding change that cannot read (or byte-identically
//! re-write) old files fails here, which is the signal to bump the format
//! version instead of silently breaking saved databases.

use cqa::core::answers::{certain_answers, CertainAnswersEngine};
use cqa::exec::ExecMode;
use cqa::parser::parse_document;
use cqa_data::store;

/// The committed store file and the text document it was written from.
const FIXTURE: &[u8] = include_bytes!("fixtures/figure1.cqdb");
const DOCUMENT: &str = include_str!("fixtures/figure1.cqa");

#[test]
fn committed_fixture_loads_with_full_fidelity() {
    let loaded = store::load_from_slice(FIXTURE).expect("the committed fixture loads");
    let doc = parse_document(DOCUMENT).unwrap();

    // Schema manifest: names, arities and key lengths survive.
    assert_eq!(loaded.schema().len(), doc.database.schema().len());
    for ((_, a), (_, b)) in loaded.schema().iter().zip(doc.database.schema().iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.signature, b.signature);
    }

    // Facts and block structure survive (Figure 1: 6 facts in 4 blocks,
    // 4 repairs).
    assert_eq!(loaded.fact_count(), 6);
    assert_eq!(loaded.block_count(), 4);
    assert_eq!(loaded.repair_count(), Some(4));
    assert_eq!(loaded.sorted_facts(), doc.database.sorted_facts());
}

#[test]
fn committed_fixture_is_byte_identical_to_a_fresh_save() {
    // The strongest format pin: loading the committed file and saving it
    // again must reproduce the committed bytes exactly.
    let loaded = store::load_from_slice(FIXTURE).expect("the committed fixture loads");
    assert_eq!(
        store::save_to_vec(&loaded),
        FIXTURE,
        "the store encoding changed; bump the format version"
    );
    // And the same bytes come out of encoding the parsed document directly.
    let doc = parse_document(DOCUMENT).unwrap();
    assert_eq!(store::save_to_vec(&doc.database), FIXTURE);
}

#[test]
fn committed_fixture_answers_like_the_parsed_document() {
    let loaded = store::load_from_slice(FIXTURE).expect("the committed fixture loads");
    let doc = parse_document(DOCUMENT).unwrap();
    for (name, query) in &doc.queries {
        let reference = certain_answers(query, &doc.database).unwrap();
        assert_eq!(
            certain_answers(query, &loaded).unwrap(),
            reference,
            "{name} diverged after reload"
        );
        for mode in [ExecMode::RowAtATime, ExecMode::Vectorized, ExecMode::Auto] {
            let engine = CertainAnswersEngine::new(query).unwrap().with_mode(mode);
            let candidates = cqa::core::answers::possible_answers(query, &loaded).unwrap();
            assert_eq!(
                engine.certain_of(&loaded, &candidates).unwrap(),
                engine.certain_of(&doc.database, &candidates).unwrap(),
                "{name} diverged after reload in {mode:?}"
            );
        }
    }
}

#[test]
fn corruption_is_rejected_before_parsing() {
    // Truncation.
    assert!(store::load_from_slice(&FIXTURE[..FIXTURE.len() - 1]).is_err());
    assert!(store::load_from_slice(&FIXTURE[..4]).is_err());
    assert!(store::load_from_slice(&[]).is_err());
    // A single flipped payload byte must trip the checksum.
    let mut corrupt = FIXTURE.to_vec();
    corrupt[FIXTURE.len() / 2] ^= 0x01;
    assert!(store::load_from_slice(&corrupt).is_err());
    // Wrong leading magic.
    let mut wrong_magic = FIXTURE.to_vec();
    wrong_magic[0] = b'X';
    assert!(store::load_from_slice(&wrong_magic).is_err());
}
