//! Observability overhead benchmark: `BENCH_obs.json`.
//!
//! The metrics layer promises to be near-free when nobody is looking. This
//! binary re-runs the `BENCH_vec` scenarios (batched vectorized certain
//! answers, the compiled certain rewriting, the possible-answer join) under
//! three configurations:
//!
//! 1. **disabled** — `cqa_obs::set_enabled(false)`: every `count!` /
//!    `observe!` call site short-circuits on one relaxed atomic load.
//! 2. **enabled** — the default production configuration: counters and
//!    histograms record, no trace sink. The regression gate lives here:
//!    the enabled/disabled wall-time ratio must stay under the threshold.
//! 3. **traced** — a [`TraceSink`] installed on the prepared plan, the
//!    `explain --analyze` configuration. Reported for context, not gated:
//!    per-operator row counting has a real (still small) cost.
//!
//! The gate is asserted on the **aggregate** ratio (summed minima across
//! all scenarios and workloads) — per-scenario ratios on sub-millisecond
//! timings are too noisy to gate on individually — and the process exits
//! non-zero on violation *after* writing the artifact, so CI keeps the
//! evidence. `--quick` shrinks the instances for CI smoke runs and widens
//! the threshold accordingly.

use cqa_bench::{ms, quick_flag, scaled_instance, time_min, write_bench_json};
use cqa_core::answers::{possible_answers, CertainAnswersEngine};
use cqa_core::solvers::RewritingSolver;
use cqa_exec::{ExecMode, FoPlan, QueryPlan};
use cqa_obs::TraceSink;
use cqa_query::{catalog, ConjunctiveQuery, Variable};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn free_first_variable(query: &ConjunctiveQuery, var: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::with_free_vars(
        query.schema().clone(),
        query.atoms().to_vec(),
        vec![Variable::new(var)],
    )
    .expect("freeing a variable of a valid query stays valid")
}

/// Minimum wall time of `f` with metrics disabled, then enabled. Leaves
/// metrics enabled (the process default) on return.
fn disabled_vs_enabled<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    cqa_obs::set_enabled(false);
    let disabled = time_min(runs, &mut f);
    cqa_obs::set_enabled(true);
    let enabled = time_min(runs, &mut f);
    (disabled, enabled)
}

fn main() {
    let quick = quick_flag();
    // Quick instances finish in microseconds, where min-over-runs still
    // jitters by tens of percent; the smoke gate is correspondingly loose.
    let runs = if quick { 5 } else { 7 };
    let threshold = if quick { 2.0 } else { 1.05 };

    let workloads: Vec<(&str, ConjunctiveQuery, &str, usize, u64)> = vec![
        (
            "path3",
            catalog::fo_path3().query,
            "x",
            if quick { 150 } else { 2200 },
            11,
        ),
        (
            "conference",
            catalog::conference().query,
            "x",
            if quick { 200 } else { 2600 },
            13,
        ),
    ];

    let mut entries = Vec::new();
    let mut total_disabled = Duration::ZERO;
    let mut total_enabled = Duration::ZERO;
    for (name, boolean_query, freed, n, seed) in workloads {
        let db = scaled_instance(&boolean_query, n, seed);
        let index = db.index();
        let query = free_first_variable(&boolean_query, freed);
        eprintln!(
            "workload {name}: {} atoms, {} facts, {} blocks",
            query.len(),
            db.fact_count(),
            db.block_count(),
        );

        // -- batched vectorized certain answers (no trace hook: the engine
        //    owns its plans). Results asserted identical across toggles.
        let candidates = possible_answers(&query, &db).expect("workload queries are answerable");
        let engine = CertainAnswersEngine::new(&query)
            .expect("answerable")
            .with_mode(ExecMode::Vectorized);
        cqa_obs::set_enabled(false);
        let reference = engine.certain_of(&db, &candidates).expect("answerable");
        cqa_obs::set_enabled(true);
        assert_eq!(
            engine.certain_of(&db, &candidates).expect("answerable"),
            reference,
            "certain answers changed when metrics were enabled on {name}"
        );
        let (answers_off, answers_on) = disabled_vs_enabled(runs, || {
            engine.certain_of(&db, &candidates).expect("answerable")
        });

        // -- Boolean certain rewriting: plain prepared vs a trace-sink one.
        let solver = RewritingSolver::new(&boolean_query).expect("Theorem 1 queries classify");
        let fo_plan = FoPlan::compile(
            solver.formula(),
            boolean_query.schema(),
            Some(index.statistics()),
        );
        let fo = fo_plan.prepare(&index).with_mode(ExecMode::Vectorized);
        let fo_sink = Arc::new(TraceSink::new(fo_plan.trace_ops()));
        let fo_traced = fo_plan
            .prepare(&index)
            .with_mode(ExecMode::Vectorized)
            .with_trace(fo_sink.clone());
        assert_eq!(
            fo_traced.eval(),
            fo.eval(),
            "certain-rewriting verdict changed under tracing on {name}"
        );
        let (rewriting_off, rewriting_on) = disabled_vs_enabled(runs, || fo.eval());
        let rewriting_traced = time_min(runs, || fo_traced.eval());

        // -- Possible-answer join: plain prepared vs a trace-sink one.
        let join_plan = QueryPlan::compile(&query, Some(index.statistics()));
        let join = join_plan.prepare(&index).with_mode(ExecMode::Vectorized);
        let join_sink = Arc::new(TraceSink::new(join_plan.trace_ops()));
        let join_traced = join_plan
            .prepare(&index)
            .with_mode(ExecMode::Vectorized)
            .with_trace(join_sink.clone());
        assert_eq!(
            join_traced.answers(),
            join.answers(),
            "join answers changed under tracing on {name}"
        );
        let (join_off, join_on) = disabled_vs_enabled(runs, || join.answers());
        let join_traced_time = time_min(runs, || join_traced.answers());

        for (scenario, off, on, traced) in [
            ("certain_answers_vec", answers_off, answers_on, None),
            (
                "certain_rewriting_vec",
                rewriting_off,
                rewriting_on,
                Some(rewriting_traced),
            ),
            (
                "join_answers_vec",
                join_off,
                join_on,
                Some(join_traced_time),
            ),
        ] {
            total_disabled += off;
            total_enabled += on;
            let traced_text = traced.map_or_else(
                || "      -    ".to_string(),
                |t| format!("{:9.3} ms", ms(t)),
            );
            eprintln!(
                "  {scenario:22} disabled {:9.3} ms | enabled {:9.3} ms | traced {traced_text} ({:.3}x enabled/disabled)",
                ms(off),
                ms(on),
                ms(on) / ms(off).max(1e-9),
            );
        }

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{name}\",\n      \"facts\": {},\n      \"blocks\": {},\n      \"candidate_answers\": {},\n      \"certain_answers_vec\": {{ \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"ratio\": {:.3} }},\n      \"certain_rewriting_vec\": {{ \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"traced_ms\": {:.3}, \"ratio\": {:.3} }},\n      \"join_answers_vec\": {{ \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"traced_ms\": {:.3}, \"ratio\": {:.3} }}\n    }}",
            db.fact_count(),
            db.block_count(),
            candidates.len(),
            ms(answers_off),
            ms(answers_on),
            ms(answers_on) / ms(answers_off).max(1e-9),
            ms(rewriting_off),
            ms(rewriting_on),
            ms(rewriting_traced),
            ms(rewriting_on) / ms(rewriting_off).max(1e-9),
            ms(join_off),
            ms(join_on),
            ms(join_traced_time),
            ms(join_on) / ms(join_off).max(1e-9),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let ratio = ms(total_enabled) / ms(total_disabled).max(1e-9);
    let ok = ratio < threshold;
    eprintln!(
        "aggregate: disabled {:.3} ms, enabled {:.3} ms, ratio {ratio:.3} (threshold {threshold}) — {}",
        ms(total_disabled),
        ms(total_enabled),
        if ok { "ok" } else { "OVERHEAD REGRESSION" },
    );

    let json = format!(
        "{{\n  \"benchmark\": \"observability overhead: metrics disabled vs enabled (no sink) vs per-op trace sink\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_obs\",\n  \"quick\": {quick},\n  \"note\": \"times are minima over {runs} runs; the gate is the aggregate enabled/disabled ratio (per-scenario ratios on sub-millisecond timings are informative only); traced = TraceSink installed, the explain --analyze configuration, reported for context\",\n  \"aggregate\": {{ \"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"ratio\": {ratio:.3}, \"threshold\": {threshold}, \"overhead_ok\": {ok} }},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        ms(total_disabled),
        ms(total_enabled),
        entries.join(",\n")
    );

    let out = write_bench_json("BENCH_obs.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
    if !ok {
        std::process::exit(1);
    }
}
