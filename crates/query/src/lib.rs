//! # cqa-query
//!
//! Boolean conjunctive queries and the hypergraph machinery of Section 3 of
//!
//! > Jef Wijsen. *Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering*. PODS 2013.
//!
//! Provided here:
//!
//! * [`Variable`], [`Term`], [`Atom`], [`ConjunctiveQuery`] — queries are
//!   finite sets of atoms `R(x̄, ȳ)` whose key positions are a prefix of the
//!   attribute list (signatures live in the shared [`cqa_data::Schema`]);
//! * [`Valuation`] and query evaluation (`db |= q`, enumeration of all
//!   valuations, answers to non-Boolean queries);
//! * substitutions `q[x ↦ a]` (Definition 7);
//! * functional dependencies `K(q)` and attribute closures (Definition 1);
//! * join trees and the Connectedness Condition, plus the GYO acyclicity
//!   test (Section 3, "Join tree and acyclic conjunctive query");
//! * purification of uncertain databases (Lemma 1);
//! * a catalog of the queries used throughout the paper (`q0`, `q1` of
//!   Fig. 2, the Fig. 4 query, `C(k)` and `AC(k)` of Definition 8, …);
//! * [`FoFormula`] — the first-order formula AST in which certain rewritings
//!   (Theorem 1, built by `cqa-core`) are expressed and from which the
//!   `cqa-exec` physical planner compiles executable plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
pub mod catalog;
mod error;
pub mod eval;
pub mod fd;
pub mod fo_formula;
pub mod gyo;
pub mod join_tree;
pub mod purify;
mod query;
pub mod substitute;
mod term;
mod valuation;
pub mod varset;

pub use atom::{Atom, AtomId};
pub use error::QueryError;
pub use fo_formula::FoFormula;
pub use join_tree::JoinTree;
pub use query::{ConjunctiveQuery, QueryBuilder};
pub use term::{Term, Variable};
pub use valuation::Valuation;
pub use varset::{VarIndex, VarSet};
