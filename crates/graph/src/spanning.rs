//! Maximum-weight spanning trees and undirected-tree path queries.
//!
//! Join trees (Section 3 of the paper, after Beeri–Fagin–Maier–Yannakakis)
//! are built from the *intersection graph* of a conjunctive query: vertices
//! are atoms and the weight of edge `{F, G}` is `|vars(F) ∩ vars(G)|`. A
//! classical result states that a query is acyclic iff some (equivalently,
//! every) maximum-weight spanning tree of this graph satisfies the
//! Connectedness Condition; `cqa-query` uses [`maximum_spanning_tree`] and
//! then verifies the condition.

/// An undirected tree over `n` vertices, stored as an adjacency list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    adjacency: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
}

impl Tree {
    /// Builds a tree from an explicit edge list over vertices `0..n`.
    ///
    /// The edge list is trusted to be a spanning tree (n-1 edges, connected);
    /// this is checked with a debug assertion.
    pub fn from_edges(n: usize, edges: Vec<(usize, usize)>) -> Self {
        debug_assert!(n == 0 || edges.len() == n - 1, "spanning tree edge count");
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        Tree { adjacency, edges }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True iff the tree has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The edges of the tree.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// The unique path between two vertices, as the list of vertices from
    /// `from` to `to` (inclusive). Returns `None` if they are disconnected
    /// (cannot happen in a spanning tree, but kept total for robustness).
    pub fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.adjacency.len();
        let mut parent = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v] {
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = v;
                    if w == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// The edges along the unique path between two vertices.
    pub fn path_edges(&self, from: usize, to: usize) -> Option<Vec<(usize, usize)>> {
        let path = self.path(from, to)?;
        Some(path.windows(2).map(|w| (w[0], w[1])).collect())
    }
}

/// Computes a **maximum-weight spanning tree** of the complete undirected
/// graph over `0..n` with edge weights given by `weight(i, j)` (assumed
/// symmetric). Uses Prim's algorithm on the dense graph, `O(n^2)` calls to
/// `weight`.
///
/// Ties are broken deterministically towards smaller vertex indices so that
/// repeated runs build the same tree.
pub fn maximum_spanning_tree<W>(n: usize, mut weight: W) -> Tree
where
    W: FnMut(usize, usize) -> i64,
{
    if n == 0 {
        return Tree::from_edges(0, Vec::new());
    }
    let mut in_tree = vec![false; n];
    let mut best_weight = vec![i64::MIN; n];
    let mut best_parent = vec![usize::MAX; n];
    in_tree[0] = true;
    for v in 1..n {
        best_weight[v] = weight(0, v);
        best_parent[v] = 0;
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        // Pick the heaviest fringe vertex (smallest index on ties).
        let mut pick = usize::MAX;
        for v in 0..n {
            if !in_tree[v] && (pick == usize::MAX || best_weight[v] > best_weight[pick]) {
                pick = v;
            }
        }
        in_tree[pick] = true;
        edges.push((best_parent[pick], pick));
        for v in 0..n {
            if !in_tree[v] {
                let w = weight(pick, v);
                if w > best_weight[v] {
                    best_weight[v] = w;
                    best_parent[v] = pick;
                }
            }
        }
    }
    Tree::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vertex_tree() {
        let t = maximum_spanning_tree(1, |_, _| 0);
        assert_eq!(t.len(), 1);
        assert!(t.edges().is_empty());
        assert_eq!(t.path(0, 0), Some(vec![0]));
    }

    #[test]
    fn picks_heavy_edges() {
        // Weights: 0-1: 5, 0-2: 1, 1-2: 4. Max spanning tree = {0-1, 1-2}.
        let w = |a: usize, b: usize| match (a.min(b), a.max(b)) {
            (0, 1) => 5,
            (0, 2) => 1,
            (1, 2) => 4,
            _ => 0,
        };
        let t = maximum_spanning_tree(3, w);
        let mut edges: Vec<(usize, usize)> = t
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn tree_weight_is_maximal_on_a_small_graph() {
        // Exhaustively check optimality on 4 vertices against all spanning trees.
        let weights = [[0, 3, 1, 7], [3, 0, 2, 4], [1, 2, 0, 5], [7, 4, 5, 0]];
        let w = |a: usize, b: usize| weights[a][b];
        let t = maximum_spanning_tree(4, w);
        let tree_weight: i64 = t.edges().iter().map(|&(a, b)| weights[a][b]).sum();
        // All 16 labelled spanning trees of K4 (Cayley: 4^{4-2}); enumerate by
        // brute force over all 3-edge subsets that form a tree.
        let all_edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let mut best = i64::MIN;
        for i in 0..6 {
            for j in i + 1..6 {
                for k in j + 1..6 {
                    let es = [all_edges[i], all_edges[j], all_edges[k]];
                    // Check connectivity via union-find on 4 vertices.
                    let mut parent = [0, 1, 2, 3];
                    fn find(p: &mut [usize; 4], x: usize) -> usize {
                        if p[x] != x {
                            p[x] = find(p, p[x]);
                        }
                        p[x]
                    }
                    let mut ok = true;
                    for &(a, b) in &es {
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        if ra == rb {
                            ok = false;
                            break;
                        }
                        parent[ra] = rb;
                    }
                    if ok {
                        let weight: i64 = es.iter().map(|&(a, b)| weights[a][b]).sum();
                        best = best.max(weight);
                    }
                }
            }
        }
        assert_eq!(tree_weight, best);
    }

    #[test]
    fn paths_in_a_path_tree() {
        let t = Tree::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.path(3, 1), Some(vec![3, 2, 1]));
        assert_eq!(t.path_edges(0, 2), Some(vec![(0, 1), (1, 2)]));
    }

    #[test]
    fn zero_weight_graph_still_spans() {
        let t = maximum_spanning_tree(5, |_, _| 0);
        assert_eq!(t.edges().len(), 4);
        for v in 1..5 {
            assert!(t.path(0, v).is_some());
        }
    }
}
