//! Certain answers to non-Boolean conjunctive queries.
//!
//! The paper restricts attention to Boolean queries, noting that the
//! restriction "is not fundamental" (Section 3). This module provides the
//! natural non-Boolean extension a database user expects: the **certain
//! answers** of a query with free variables are the tuples that are answers
//! in *every* repair. A tuple is a candidate only if it is an answer on the
//! full database (answers are monotone), and a candidate is certain iff the
//! Boolean query obtained by substituting it for the free variables is
//! certain — which is decided by the classified solvers of
//! [`crate::solvers`].

use crate::fo::{certain_rewriting_open, FoFormula};
use crate::solvers::{CertaintyEngine, CertaintySolver};
use cqa_data::{UncertainDatabase, Value};
use cqa_exec::{ExecMode, FoPlan, PlanCache, StatsStamp};
use cqa_query::{substitute, ConjunctiveQuery, QueryError, Variable};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Process-wide memo of compiled satisfaction plans: repeated
/// [`certain_answers`] calls for the same `(schema, query)` — a CLI loop, a
/// service answering the same query against evolving data — compile once.
/// Shared with the `cqa-par` batch engine so the sequential and parallel
/// paths amortize the same compilations.
pub fn shared_plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

/// The certain answers (and, for context, the possible answers) of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerSets {
    /// Tuples that are answers in **every** repair.
    pub certain: BTreeSet<Vec<Value>>,
    /// Tuples that are answers in **some** repair (equivalently, answers on
    /// the database itself, by monotonicity of conjunctive queries).
    pub possible: BTreeSet<Vec<Value>>,
}

/// Computes the certain answers of a (possibly non-Boolean) conjunctive
/// query without self-joins.
///
/// For a Boolean query the result contains the empty tuple iff the query is
/// certain. Internally this builds a [`CertainAnswersEngine`] — classify and
/// compile once, then decide every candidate through one prepared plan —
/// rather than re-classifying the grounded query per candidate.
pub fn certain_answers(
    query: &ConjunctiveQuery,
    db: &UncertainDatabase,
) -> Result<AnswerSets, QueryError> {
    let possible = possible_answers(query, db)?;
    let engine = CertainAnswersEngine::new(query)?;
    let certain = engine.certain_of(db, &possible)?;
    Ok(AnswerSets { certain, possible })
}

/// A compile-once engine for deciding which candidate tuples are certain
/// answers.
///
/// The naive lift of the Boolean solvers grounds the query with each
/// candidate and classifies + compiles the grounded query from scratch —
/// per candidate. But the attack graph depends only on the *variable*
/// structure of the query (constants are opaque to attacks, and a
/// self-join-free query cannot collapse atoms under a ground substitution),
/// so every grounding of the same query lands in the same complexity class
/// with the same rewriting shape. This engine exploits that: it classifies
/// the query **once**, builds the **open** certain rewriting `φ(x̄)`
/// ([`certain_rewriting_open`]) with the free variables kept free, compiles
/// it into a single [`FoPlan`], and then decides all candidates by batch
/// evaluation ([`cqa_exec::PreparedFo::eval_tuples`]) — which routes large
/// batches through the vectorized executor.
///
/// Queries outside the first-order region (cyclic attack graph) fall back to
/// the per-candidate [`CertaintyEngine`] path, whose non-FO solvers are
/// inherently per-ground-query.
pub struct CertainAnswersEngine {
    query: ConjunctiveQuery,
    free: Vec<Variable>,
    open: Option<OpenRewriting>,
    mode: ExecMode,
}

/// The open rewriting `φ(x̄)` and its lazily compiled plan, stamped with the
/// statistics it was compiled against (statistics of the first database seen
/// pick the guard atoms, mirroring [`crate::solvers::RewritingSolver`]).
///
/// Databases now keep their index snapshots warm across mutations (delta
/// maintenance), so a long-lived engine can see the data grow far past its
/// compile-time cardinalities; when the stamp has
/// [drifted](StatsStamp::drifted_from) the plan is recompiled against the
/// current statistics (counted as `core.answers.plan_stale`).
struct OpenRewriting {
    formula: FoFormula,
    plan: RwLock<Option<(Arc<FoPlan>, StatsStamp)>>,
}

impl CertainAnswersEngine {
    /// Classifies `query` and, when its attack graph is acyclic, builds and
    /// keeps the open certain rewriting. Fails only on malformed queries
    /// (self-joins); classification failures select the per-candidate
    /// fallback path instead, so [`certain_of`](Self::certain_of) decides
    /// exactly the queries [`tuple_is_certain`] decides.
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        query.require_self_join_free()?;
        let open = certain_rewriting_open(query)
            .ok()
            .map(|formula| OpenRewriting {
                formula,
                plan: RwLock::new(None),
            });
        Ok(CertainAnswersEngine {
            query: query.clone(),
            free: query.free_vars().to_vec(),
            open,
            mode: ExecMode::Auto,
        })
    }

    /// Overrides the executor mode of the batch path (tests force the
    /// vectorized and row-at-a-time kernels against each other).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether candidates are decided through the compiled open rewriting
    /// (`true`) or the per-candidate classified-solver fallback (`false`).
    pub fn uses_open_rewriting(&self) -> bool {
        self.open.is_some()
    }

    /// The open certain rewriting `φ(x̄)`, if the query is in the
    /// first-order region.
    pub fn open_formula(&self) -> Option<&FoFormula> {
        self.open.as_ref().map(|o| &o.formula)
    }

    /// The compiled plan of the open rewriting, compiled on first use with
    /// `db`'s statistics — and recompiled when those statistics have
    /// drifted beyond [`cqa_exec::cache::DRIFT_FACTOR`] since compile time.
    pub fn open_plan(&self, db: &UncertainDatabase) -> Option<Arc<FoPlan>> {
        let open = self.open.as_ref()?;
        let index = db.index();
        let stats = index.statistics();
        {
            let cached = open.plan.read().unwrap_or_else(PoisonError::into_inner);
            if let Some((plan, stamp)) = cached.as_ref() {
                if !stamp.drifted_from(Some(stats)) {
                    return Some(plan.clone());
                }
            }
        }
        let had_plan = {
            let cached = open.plan.read().unwrap_or_else(PoisonError::into_inner);
            cached.is_some()
        };
        if had_plan {
            cqa_obs::count!("core.answers.plan_stale");
        }
        // Compile outside the lock; racing recompiles are both compiled
        // against current statistics, so last-writer-wins is fine.
        let plan = Arc::new(FoPlan::compile(
            &open.formula,
            self.query.schema(),
            Some(stats),
        ));
        let stamp = StatsStamp::of(Some(stats));
        *open.plan.write().unwrap_or_else(PoisonError::into_inner) = Some((plan.clone(), stamp));
        Some(plan)
    }

    /// Decides certainty of each candidate tuple: `out[i]` ⇔ the Boolean
    /// query grounded with `tuples[i]` is certain. This is the batch
    /// counterpart of [`tuple_is_certain`], byte-identical in its verdicts.
    pub fn verdicts(
        &self,
        db: &UncertainDatabase,
        tuples: &[Vec<Value>],
    ) -> Result<Vec<bool>, QueryError> {
        match self.open_plan(db) {
            Some(plan) => {
                cqa_obs::count!("core.answers.batch");
                cqa_obs::count!("core.answers.batch_tuples", tuples.len() as u64);
                let index = db.index();
                let prepared = plan.prepare(&index).with_mode(self.mode);
                Ok(prepared.eval_tuples(&self.free, tuples))
            }
            None => {
                cqa_obs::count!("core.answers.fallback");
                cqa_obs::count!("core.answers.fallback_tuples", tuples.len() as u64);
                tuples
                    .iter()
                    .map(|tuple| tuple_is_certain(&self.query, &self.free, tuple, db))
                    .collect()
            }
        }
    }

    /// Filters `candidates` down to the certain answers.
    pub fn certain_of(
        &self,
        db: &UncertainDatabase,
        candidates: &BTreeSet<Vec<Value>>,
    ) -> Result<BTreeSet<Vec<Value>>, QueryError> {
        let tuples: Vec<Vec<Value>> = candidates.iter().cloned().collect();
        let verdicts = self.verdicts(db, &tuples)?;
        Ok(tuples
            .into_iter()
            .zip(verdicts)
            .filter_map(|(tuple, certain)| certain.then_some(tuple))
            .collect())
    }
}

/// The **possible answers** of the query: tuples that are answers on `db`
/// itself — equivalently, answers in *some* repair (conjunctive queries are
/// monotone). These are exactly the candidates for certainty; the parallel
/// layer shards this set across threads.
///
/// Evaluated through the compiled join plan of the process-wide
/// [`shared_plan_cache`] (`cqa_query::eval` remains the reference; the
/// property suite keeps them identical).
pub fn possible_answers(
    query: &ConjunctiveQuery,
    db: &UncertainDatabase,
) -> Result<BTreeSet<Vec<Value>>, QueryError> {
    query.require_self_join_free()?;
    let index = db.index();
    Ok(shared_plan_cache()
        .plan(query, Some(index.statistics()))
        .answers(db))
}

/// Decides certainty of one candidate tuple: the Boolean query obtained by
/// substituting `tuple` for `free` must be certain. This per-candidate step
/// is what [`certain_answers`] runs in a loop and the parallel layer runs on
/// worker threads.
pub fn tuple_is_certain(
    query: &ConjunctiveQuery,
    free: &[cqa_query::Variable],
    tuple: &[Value],
    db: &UncertainDatabase,
) -> Result<bool, QueryError> {
    let grounded = substitute::substitute_seq(query, free, tuple);
    let engine = CertaintyEngine::new(&grounded)?;
    Ok(engine.is_certain(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{catalog, Term, Variable};

    #[test]
    fn conference_certain_answers() {
        // q(x) :- C(x, y, 'Rome'), R(x, 'A'): which conferences certainly put
        // an A-ranked event in Rome?
        let boolean = catalog::conference();
        let schema = boolean.query.schema().clone();
        let query = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let db = catalog::conference_database();
        let answers = certain_answers(&query, &db).unwrap();
        // Possible: PODS (if Rome repair chosen) and KDD (if rank-A repair chosen).
        assert_eq!(answers.possible.len(), 2);
        // Certain: neither — PODS may be in Paris, KDD may be rank B.
        assert!(answers.certain.is_empty());

        // Resolve KDD's rank to A: KDD becomes a certain answer.
        let mut fixed = db.clone();
        let r = fixed.schema().relation_id("R").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            r,
            vec![Value::str("KDD"), Value::str("B")],
        ));
        let answers = certain_answers(&query, &fixed).unwrap();
        assert_eq!(
            answers.certain,
            [vec![Value::str("KDD")]].into_iter().collect()
        );
        assert_eq!(answers.possible.len(), 2);
    }

    #[test]
    fn boolean_queries_reduce_to_the_empty_tuple() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let answers = certain_answers(&q, &db).unwrap();
        assert!(answers.certain.is_empty());
        assert_eq!(answers.possible.len(), 1);
        // On a certain instance, the empty tuple is a certain answer.
        let mut fixed = db.clone();
        let c = fixed.schema().relation_id("C").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            c,
            vec![Value::str("PODS"), Value::str("2016"), Value::str("Paris")],
        ));
        let answers = certain_answers(&q, &fixed).unwrap();
        assert_eq!(answers.certain.len(), 1);
        assert!(answers.certain.contains(&Vec::new()));
    }

    #[test]
    fn the_engine_matches_the_per_tuple_reference_in_every_mode() {
        let schema = catalog::conference().query.schema().clone();
        let query = ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let db = catalog::conference_database();
        let free = query.free_vars().to_vec();
        // Candidates beyond the possible answers, including a value outside
        // the active domain, must get the same verdicts as the reference.
        let mut candidates = possible_answers(&query, &db).unwrap();
        candidates.insert(vec![Value::str("ICDT")]);
        candidates.insert(vec![Value::str("never-seen")]);
        let reference: BTreeSet<Vec<Value>> = candidates
            .iter()
            .filter(|t| tuple_is_certain(&query, &free, t, &db).unwrap())
            .cloned()
            .collect();
        for mode in [ExecMode::RowAtATime, ExecMode::Vectorized, ExecMode::Auto] {
            let engine = CertainAnswersEngine::new(&query).unwrap().with_mode(mode);
            assert!(engine.uses_open_rewriting());
            assert_eq!(
                engine.certain_of(&db, &candidates).unwrap(),
                reference,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn non_fo_queries_fall_back_to_the_classified_solvers() {
        // The attack graph of {R(y;z), S(z;y)} has a cycle among the bound
        // variables, so no open rewriting exists; the engine must fall back
        // to the per-candidate classified solvers and still agree with them.
        let schema = cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1), ("F", 2, 1)])
            .unwrap()
            .into_shared();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("y"), Term::var("z")])
            .atom("S", [Term::var("z"), Term::var("y")])
            .atom("F", [Term::var("y"), Term::var("w")])
            .free([Variable::new("w")])
            .build()
            .unwrap();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["a", "c"]).unwrap();
        db.insert_values("S", ["b", "a"]).unwrap();
        db.insert_values("S", ["c", "a"]).unwrap();
        db.insert_values("F", ["a", "w1"]).unwrap();
        db.insert_values("F", ["a", "w2"]).unwrap();
        let engine = CertainAnswersEngine::new(&query).unwrap();
        assert!(!engine.uses_open_rewriting());
        let free = query.free_vars().to_vec();
        let candidates = possible_answers(&query, &db).unwrap();
        let reference: BTreeSet<Vec<Value>> = candidates
            .iter()
            .filter(|t| tuple_is_certain(&query, &free, t, &db).unwrap())
            .cloned()
            .collect();
        assert_eq!(engine.certain_of(&db, &candidates).unwrap(), reference);
    }

    #[test]
    fn certain_answers_are_a_subset_of_possible_answers() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "b"]).unwrap();
        db.insert_values("R", ["c", "b"]).unwrap();
        db.insert_values("R", ["c", "dangling"]).unwrap();
        db.insert_values("S", ["b", "t"]).unwrap();
        let answers = certain_answers(&query, &db).unwrap();
        assert!(answers.certain.is_subset(&answers.possible));
        // a is certain (its only R tuple joins); c is possible but not certain
        // (its block may choose the dangling tuple).
        assert!(answers.certain.contains(&vec![Value::str("a")]));
        assert!(!answers.certain.contains(&vec![Value::str("c")]));
        assert!(answers.possible.contains(&vec![Value::str("c")]));
    }
}
