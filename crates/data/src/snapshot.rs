//! Shareable point-in-time snapshots of an uncertain database.
//!
//! The parallel evaluation layer (`cqa-par`) executes many independent
//! subproblems against *one* immutable state of the data: candidate-answer
//! checks, root-scan shards, and whole query batches must all see the same
//! facts, the same blocks, and the same [`DatabaseIndex`] — and they run on
//! worker threads that outlive any `&UncertainDatabase` borrow a caller
//! could offer. A [`Snapshot`] packages an owned copy of the database
//! together with its index snapshot behind `Arc`s: cloning is two reference
//! counts, the contents can never change, and every clone is `Send + Sync`.

use crate::{DatabaseIndex, Schema, UncertainDatabase};
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply cloneable point-in-time view of an
/// [`UncertainDatabase`] plus its [`DatabaseIndex`].
///
/// Obtained from [`UncertainDatabase::snapshot`]. The snapshot *owns* its
/// copy of the database, so later mutations of the original are invisible
/// to it — the property that makes "answer this batch of queries against
/// one consistent state" meaningful while the writer moves on.
///
/// ```
/// use cqa_data::{Schema, UncertainDatabase};
///
/// let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
/// let mut db = UncertainDatabase::new(schema);
/// db.insert_values("R", ["a", "1"]).unwrap();
/// let snapshot = db.snapshot();
/// db.insert_values("R", ["b", "2"]).unwrap();
/// assert_eq!(snapshot.database().fact_count(), 1); // the snapshot is frozen
/// assert_eq!(db.fact_count(), 2);
/// ```
#[derive(Clone)]
pub struct Snapshot {
    db: Arc<UncertainDatabase>,
    index: Arc<DatabaseIndex>,
    epoch: u64,
}

impl Snapshot {
    /// Freezes `db` into a snapshot. The database's cached index is reused
    /// when warm, so snapshotting an already-indexed database copies the
    /// fact storage but not the index.
    pub fn new(db: &UncertainDatabase) -> Snapshot {
        let index = db.index();
        Snapshot {
            // The clone shares the (just-warmed) cached index, so
            // `self.db.index()` and `self.index` stay the same allocation.
            db: Arc::new(db.clone()),
            index,
            epoch: db.epoch(),
        }
    }

    /// The mutation epoch of the source database at freeze time
    /// ([`UncertainDatabase::epoch`]). Comparing this against the live
    /// database's current epoch detects staleness with one integer compare —
    /// the check `cqa-par`'s batch engine and the serve loop run per batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True iff `db` has been effectively mutated since this snapshot was
    /// frozen from it. Only meaningful for the same database lineage.
    pub fn is_stale_for(&self, db: &UncertainDatabase) -> bool {
        self.epoch != db.epoch()
    }

    /// The frozen database contents.
    pub fn database(&self) -> &UncertainDatabase {
        &self.db
    }

    /// The schema of the frozen database.
    pub fn schema(&self) -> &Arc<Schema> {
        self.db.schema()
    }

    /// The secondary-index snapshot of the frozen contents.
    pub fn index(&self) -> &Arc<DatabaseIndex> {
        &self.index
    }

    /// Number of facts in the snapshot.
    pub fn fact_count(&self) -> usize {
        self.index.fact_count()
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Snapshot({} facts)", self.fact_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn snapshots_freeze_contents_and_share_the_index() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        let snapshot = db.snapshot();
        assert!(Arc::ptr_eq(snapshot.index(), &snapshot.database().index()));
        db.insert_values("R", ["a", "2"]).unwrap();
        assert_eq!(snapshot.fact_count(), 1);
        assert_eq!(db.fact_count(), 2);
        // Clones are cheap handles onto the same frozen state.
        let other = snapshot.clone();
        assert!(Arc::ptr_eq(other.index(), snapshot.index()));
        assert_eq!(
            other.database().active_domain().into_iter().next(),
            Some(Value::str("1"))
        );
        assert!(format!("{snapshot:?}").contains("1 facts"));
    }

    #[test]
    fn snapshots_move_across_threads() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap().into_shared();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["a", "1"]).unwrap();
        let snapshot = db.snapshot();
        let handle = {
            let snapshot = snapshot.clone();
            std::thread::spawn(move || snapshot.fact_count())
        };
        assert_eq!(handle.join().unwrap(), 1);
    }
}
