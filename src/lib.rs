//! # cqa — certain conjunctive query answering over uncertain databases
//!
//! Facade crate for the `certainty-rs` workspace, a Rust implementation of
//!
//! > Jef Wijsen. *Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering*. PODS 2013.
//!
//! This crate simply re-exports the public API of the workspace crates so a
//! downstream user can depend on a single crate:
//!
//! * [`obs`] — process-wide metrics (counters, gauges, latency histograms)
//!   and the per-operator trace sink behind `explain --analyze`;
//! * [`data`] — uncertain databases, blocks, repairs;
//! * [`query`] — Boolean conjunctive queries, join trees, purification;
//! * [`graph`] — the directed-graph algorithms used by the solvers;
//! * [`exec`] — the compiled physical-plan executor (join plans for
//!   queries, operator plans for certain rewritings, plan caching);
//! * [`core`] — attack graphs, complexity classification, certain-answer
//!   solvers, certain first-order rewriting, reductions;
//! * [`par`] — work-stealing parallel evaluation: sharded certain answers,
//!   root-scan sharded certainty, and the batch engine answering many
//!   queries over one snapshot;
//! * [`prob`] — block-independent-disjoint probabilistic databases, `IsSafe`,
//!   safe-plan evaluation;
//! * [`gen`] — seeded workload and instance generators;
//! * [`parser`] — a small text format plus DOT export;
//! * [`stream`] — materialized certain-answer views with block-level
//!   provenance, repaired incrementally from the mutation delta log;
//! * [`serve`] — the concurrent TCP/HTTP server: epoch snapshots,
//!   admission control, per-query deadlines, materialized views,
//!   `/metrics`.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use cqa_core as core;
pub use cqa_data as data;
pub use cqa_exec as exec;
pub use cqa_gen as gen;
pub use cqa_graph as graph;
pub use cqa_obs as obs;
pub use cqa_par as par;
pub use cqa_parser as parser;
pub use cqa_prob as prob;
pub use cqa_query as query;
pub use cqa_serve as serve;
pub use cqa_stream as stream;

/// Commonly used items, importable with `use cqa::prelude::*;`.
pub mod prelude {
    pub use cqa_core::{
        answers::certain_answers,
        classify::{classify, ComplexityClass},
        solvers::CertaintyEngine,
        AttackGraph,
    };
    pub use cqa_data::{Fact, Schema, Snapshot, UncertainDatabase, Value};
    pub use cqa_exec::{FoPlan, PlanCache, QueryPlan};
    pub use cqa_obs::{Registry, Snapshot as MetricsSnapshot, TraceSink};
    pub use cqa_par::{certain_answers_par, BatchEngine, ParConfig, ParPool, ParallelEngine};
    pub use cqa_query::{Atom, ConjunctiveQuery, Term, Variable};
    pub use cqa_stream::{MaterializedView, ViewMaintainer};
}
