//! # cqa-prob
//!
//! Block-independent-disjoint (BID) probabilistic databases and the bridge
//! between `CERTAINTY(q)` and `PROBABILITY(q)` developed in Section 7 of
//!
//! > Jef Wijsen. *Charting the Tractability Frontier of Certain Conjunctive
//! > Query Answering*. PODS 2013.
//!
//! Provided here:
//!
//! * [`BidDatabase`] — an uncertain database with per-fact probabilities in
//!   which the facts of one block are disjoint events and facts of distinct
//!   blocks are independent (Definitions 9–11);
//! * [`safety::is_safe`] — the `IsSafe` algorithm of Section 7 (Dalvi–Suciu);
//! * [`eval::probability_safe`] — polynomial evaluation of `PROBABILITY(q)`
//!   for safe queries, mirroring the rules of `IsSafe`;
//! * [`eval::probability_exact`] — exhaustive possible-world evaluation
//!   (exponential; the test oracle), and a Monte-Carlo estimator;
//! * [`counting`] — the counting variant `♯CERTAINTY(q)` by brute force;
//! * [`bridge`] — Proposition 1 (`Pr(q) = 1` vs. certainty) and Theorem 6
//!   (safety implies first-order expressibility of `CERTAINTY(q)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bid;
pub mod bridge;
pub mod counting;
pub mod eval;
pub mod safety;

pub use bid::BidDatabase;
pub use safety::is_safe;
