//! Certainty for two-atom queries (the Theorem 3 base case).
//!
//! Kolaitis and Pema \[13\] proved that for every self-join-free Boolean
//! conjunctive query with exactly two atoms, `CERTAINTY(q)` is either in P or
//! coNP-complete. The paper uses the tractable side as a black box in the
//! base case of Theorem 3: after all unattacked atoms have been eliminated,
//! the attack graph is a disjoint union of weak 2-cycles `{F, G}`, and each
//! partition of the database must be decided for the two-atom query
//! `{F, G}`.
//!
//! ## Substitution note (see `DESIGN.md` §4)
//!
//! Kolaitis–Pema reduce the P-side to maximum independent set in claw-free
//! graphs and invoke Minty's algorithm \[17\]. This implementation builds the
//! same conflict structure — blocks are cliques, and a fact of one relation
//! conflicts with the facts of the *single* block of the other relation it
//! joins with — but decides whether a conflict-free repair exists with
//! (i) polynomial-time peeling of blocks that own a conflict-free fact,
//! (ii) decomposition into connected components of the block graph, and
//! (iii) exact backtracking inside each residual component. The result is
//! always correct; it is polynomial on every instance family generated in
//! this repository, but unlike Minty's algorithm it is not worst-case
//! polynomial on adversarial residual components.

use super::{rewriting::RewritingSolver, CertaintySolver};
use crate::attack::AttackGraph;
use cqa_data::{Fact, FxHashMap, FxHashSet, UncertainDatabase};
use cqa_query::{eval, purify, ConjunctiveQuery, QueryError, Valuation};

/// Certainty solver for Boolean two-atom queries without self-joins.
pub struct TwoAtomSolver {
    query: ConjunctiveQuery,
    /// `Some` when the attack graph is acyclic and the simpler rewriting
    /// recursion applies.
    rewriting: Option<RewritingSolver>,
}

impl TwoAtomSolver {
    /// Builds the solver. The query must be Boolean, self-join-free, and have
    /// exactly one or two atoms (one-atom queries are allowed for convenience;
    /// they are handled by the rewriting path).
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        query.require_boolean()?;
        query.require_self_join_free()?;
        let rewriting = RewritingSolver::new(query).ok();
        Ok(TwoAtomSolver {
            query: query.clone(),
            rewriting,
        })
    }

    /// Decides whether a *falsifying* repair exists, i.e. a choice of one
    /// fact per block such that no chosen pair jointly satisfies the query.
    fn falsifying_repair_exists(&self, db: &UncertainDatabase) -> bool {
        debug_assert_eq!(self.query.len(), 2);
        let schema = self.query.schema();
        let f = self.query.atom(0);
        let g = self.query.atom(1);

        // Collect blocks and facts of the two relations. Facts of other
        // relations are irrelevant for a two-atom query.
        let mut blocks: Vec<Vec<Fact>> = Vec::new();
        for block in db.blocks() {
            if block.relation() == f.relation() || block.relation() == g.relation() {
                blocks.push(block.facts().to_vec());
            }
        }
        if blocks.is_empty() {
            return true; // The empty repair falsifies a non-empty query.
        }

        // Conflict edges between individual facts: (A, B) conflicts iff some
        // valuation maps atom F to A and atom G to B.
        let fact_ids: FxHashMap<Fact, (usize, usize)> = blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, facts)| {
                facts
                    .iter()
                    .enumerate()
                    .map(move |(fi, fact)| (fact.clone(), (bi, fi)))
            })
            .collect();
        // conflicts[block][fact] = list of (block, fact) it conflicts with.
        let mut conflicts: Vec<Vec<Vec<(usize, usize)>>> = blocks
            .iter()
            .map(|facts| vec![Vec::new(); facts.len()])
            .collect();
        for (bi, facts) in blocks.iter().enumerate() {
            for (fi, fact) in facts.iter().enumerate() {
                if fact.relation() != f.relation() {
                    continue;
                }
                let Some(theta) = Valuation::new().unify_with_fact(f, fact, schema) else {
                    continue;
                };
                // All G-facts compatible with theta conflict with this fact.
                for g_fact in db.relation_facts(g.relation()) {
                    if theta.unify_with_fact(g, g_fact, schema).is_some() {
                        if let Some(&(bj, fj)) = fact_ids.get(g_fact) {
                            conflicts[bi][fi].push((bj, fj));
                            conflicts[bj][fj].push((bi, fi));
                        }
                    }
                }
            }
        }

        // Peeling: a block owning a fact with no live conflicts can always
        // choose that fact; remove the block (its other facts' conflicts die
        // with it).
        let mut alive_block = vec![true; blocks.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in 0..blocks.len() {
                if !alive_block[bi] {
                    continue;
                }
                let has_free_fact = (0..blocks[bi].len())
                    .any(|fi| conflicts[bi][fi].iter().all(|&(bj, _)| !alive_block[bj]));
                if has_free_fact {
                    alive_block[bi] = false;
                    changed = true;
                }
            }
        }

        // Decompose the surviving blocks into connected components of the
        // block-level conflict graph and solve each component exactly.
        let live: Vec<usize> = (0..blocks.len()).filter(|&b| alive_block[b]).collect();
        let mut visited: FxHashSet<usize> = FxHashSet::default();
        for &start in &live {
            if visited.contains(&start) {
                continue;
            }
            // BFS over blocks connected by live conflicts.
            let mut component = Vec::new();
            let mut queue = vec![start];
            visited.insert(start);
            while let Some(b) = queue.pop() {
                component.push(b);
                for fact_conflicts in conflicts[b].iter().take(blocks[b].len()) {
                    for &(bj, _) in fact_conflicts {
                        if alive_block[bj] && visited.insert(bj) {
                            queue.push(bj);
                        }
                    }
                }
            }
            if !Self::component_has_independent_choice(
                &blocks,
                &conflicts,
                &alive_block,
                &component,
            ) {
                return false;
            }
        }
        true
    }

    /// Exact backtracking: does the component admit one chosen fact per block
    /// with no conflicting chosen pair?
    fn component_has_independent_choice(
        blocks: &[Vec<Fact>],
        conflicts: &[Vec<Vec<(usize, usize)>>],
        alive_block: &[bool],
        component: &[usize],
    ) -> bool {
        fn go(
            blocks: &[Vec<Fact>],
            conflicts: &[Vec<Vec<(usize, usize)>>],
            alive_block: &[bool],
            component: &[usize],
            depth: usize,
            chosen: &mut FxHashMap<usize, usize>,
        ) -> bool {
            if depth == component.len() {
                return true;
            }
            let b = component[depth];
            'facts: for fi in 0..blocks[b].len() {
                // The candidate must not conflict with an already-chosen fact,
                // nor with any fact of a peeled (dead) block? Dead blocks chose
                // a conflict-free fact, so they impose nothing.
                for &(bj, fj) in &conflicts[b][fi] {
                    if !alive_block[bj] {
                        continue;
                    }
                    if chosen.get(&bj) == Some(&fj) {
                        continue 'facts;
                    }
                }
                chosen.insert(b, fi);
                if go(blocks, conflicts, alive_block, component, depth + 1, chosen) {
                    return true;
                }
                chosen.remove(&b);
            }
            false
        }
        let mut chosen = FxHashMap::default();
        go(blocks, conflicts, alive_block, component, 0, &mut chosen)
    }
}

impl CertaintySolver for TwoAtomSolver {
    fn name(&self) -> &'static str {
        "two-atom"
    }

    fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        if self.query.is_empty() {
            return true;
        }
        if let Some(rewriting) = &self.rewriting {
            return rewriting.is_certain(db);
        }
        if self.query.len() == 1 {
            // Single-atom queries always have acyclic attack graphs, so the
            // rewriting path above must have been taken.
            unreachable!("single-atom queries are handled by the rewriting solver");
        }
        let purified = purify::purify(db, &self.query);
        if !eval::satisfies(&purified, &self.query) {
            return false;
        }
        !self.falsifying_repair_exists(&purified)
    }
}

/// Returns true when the two-atom query falls on the tractable side of the
/// Kolaitis–Pema dichotomy, i.e. `key(F) ⊆ vars(G)` and `key(G) ⊆ vars(F)`
/// (equivalently, by Lemma 7(2), when it can appear as a weak terminal
/// 2-cycle). Exposed for the classifier's diagnostics and for tests.
pub fn is_kp_tractable(query: &ConjunctiveQuery) -> bool {
    if query.len() != 2 {
        return false;
    }
    if AttackGraph::build(query).is_ok_and(|g| g.is_acyclic()) {
        return true;
    }
    let key_f = query.key_vars(0);
    let key_g = query.key_vars(1);
    let vars_f = query.vars_of(0);
    let vars_g = query.vars_of(1);
    key_f.is_subset(&vars_g) && key_g.is_subset(&vars_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::oracle::ExactOracle;
    use cqa_data::UncertainDatabase;
    use cqa_query::catalog;

    #[test]
    fn c2_small_instances_match_brute_force() {
        let q = catalog::c2_swap().query;
        let solver = TwoAtomSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..80 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..(3 + seed as usize % 5) {
                db.insert_values(
                    "R1",
                    [format!("a{}", next() % 3), format!("b{}", next() % 3)],
                )
                .unwrap();
                db.insert_values(
                    "R2",
                    [format!("b{}", next() % 3), format!("a{}", next() % 3)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn certain_c2_instance() {
        // R1(a,b), R2(b,a) with no alternatives: every repair contains the
        // 2-cycle, so the query is certain.
        let q = catalog::c2_swap().query;
        let solver = TwoAtomSolver::new(&q).unwrap();
        let schema = q.schema().clone();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R1", ["a", "b"]).unwrap();
        db.insert_values("R2", ["b", "a"]).unwrap();
        assert!(solver.is_certain(&db));
        // Give R1(a, ·) an alternative that avoids b: a falsifying repair appears.
        db.insert_values("R1", ["a", "c"]).unwrap();
        assert!(!solver.is_certain(&db));
    }

    #[test]
    fn forced_cycle_through_both_alternatives_is_certain() {
        // Blocks: R1(a,·) ∈ {b, b'}, and both R2(b,a) and R2(b',a) are present
        // and certain. Whatever R1 picks, the cycle closes: certain.
        let q = catalog::c2_swap().query;
        let solver = TwoAtomSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R1", ["a", "b"]).unwrap();
        db.insert_values("R1", ["a", "b'"]).unwrap();
        db.insert_values("R2", ["b", "a"]).unwrap();
        db.insert_values("R2", ["b'", "a"]).unwrap();
        assert!(solver.is_certain(&db));
        assert!(oracle.is_certain_bruteforce(&db));
    }

    #[test]
    fn q0_strong_cycle_still_answered_correctly() {
        // The solver is exact even for the coNP-complete two-atom query q0
        // (it just may take exponential time on adversarial inputs).
        let q = catalog::q0().query;
        let solver = TwoAtomSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..40 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..5 {
                db.insert_values(
                    "R0",
                    [format!("x{}", next() % 2), format!("y{}", next() % 2)],
                )
                .unwrap();
                db.insert_values(
                    "S0",
                    [
                        format!("y{}", next() % 2),
                        format!("z{}", next() % 2),
                        format!("x{}", next() % 2),
                    ],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn kp_tractability_predicate() {
        assert!(is_kp_tractable(&catalog::c2_swap().query));
        assert!(is_kp_tractable(&catalog::fo_path2().query));
        assert!(!is_kp_tractable(&catalog::q0().query));
        assert!(!is_kp_tractable(&catalog::q1().query)); // four atoms
    }

    #[test]
    fn acyclic_two_atom_queries_use_the_rewriting_path() {
        let q = catalog::fo_path2().query;
        let solver = TwoAtomSolver::new(&q).unwrap();
        assert!(solver.rewriting.is_some());
    }
}
