//! # cqa-exec — compiled physical-plan execution
//!
//! The interpreters in `cqa_query::eval` and `cqa_core::fo::eval` walk their
//! query/formula trees on every call: join order is re-derived per search
//! node, probe keys are re-assembled from hash-map valuations, and every
//! extension clones a valuation. This crate is the compile-once /
//! execute-many counterpart:
//!
//! * [`QueryPlan`] lowers a [`cqa_query::ConjunctiveQuery`] into a fixed
//!   sequence of **keyed probe / index scan** steps over a register file
//!   (one dense slot per variable), ordered once by a [cost model](cost)
//!   fed from [`cqa_data::Statistics`];
//! * [`FoPlan`] lowers a [`cqa_query::FoFormula`] — in particular the
//!   certain rewritings of Theorem 1 — into physical operators: existential
//!   **index scans**, **block-quantified ∀** operators for the
//!   ∀-over-block shape of the rewriting (a fact-list walk instead of an
//!   active-domain sweep), column and domain scans for unguarded
//!   quantifiers, membership lookups, and complement (`¬` / anti-join)
//!   nodes;
//! * [`PlanCache`] memoizes compiled query plans per `(schema, query)`.
//!
//! Plans are immutable and `Send + Sync`: compile once per query, then
//! [`QueryPlan::prepare`] / [`FoPlan::prepare`] against any
//! [`cqa_data::DatabaseIndex`] snapshot resolves the probe handles and the
//! hot path becomes a flat operator loop — no tree-walking, no per-call
//! ordering decisions, no intermediate valuation cloning.
//!
//! On top of the compiled plans, the [`mod@vec`] module adds a **vectorized
//! block-at-a-time executor**: batches of dictionary codes flow through the
//! same operator trees (selection vectors, packed-key batch hash probes,
//! grouped any/all aggregation), selected per entry point by the cost model
//! via [`ExecMode`].
//!
//! The interpreters remain the *reference semantics*: compiled,
//! interpreted, and vectorized evaluation must stay observationally
//! identical, which `tests/properties.rs` enforces on randomized instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod fo_plan;
mod probe;
pub mod query_plan;
pub mod tuning;
pub mod vec;

pub use cache::{PlanCache, StatsStamp};
pub use fo_plan::{FoPlan, PreparedFo};
pub use query_plan::{PreparedQuery, QueryPlan};
pub use vec::ExecMode;
