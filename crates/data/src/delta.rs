//! Mutation deltas: the change log that makes index maintenance incremental.
//!
//! Every mutation of an [`UncertainDatabase`] that actually changes the fact
//! set is recorded as a [`Delta`] in the database's pending [`ChangeSet`] —
//! but only while a cached [`DatabaseIndex`] snapshot exists, because the log
//! has exactly one consumer: [`DatabaseIndex::apply_delta`], which patches
//! the previous snapshot (fact lists, block lists, hash buckets, statistics,
//! active domain, columnar view) instead of rebuilding it from scratch.
//!
//! The log is bounded: past a configurable **delta-volume threshold** the
//! cached snapshot is dropped and the next [`UncertainDatabase::index`] call
//! performs a full rebuild (counted as `data.index.delta_fallback_rebuild`).
//! Patching wins when the change is small relative to the database — the
//! serving-under-writes case — while bulk rewrites (purification, `retain`)
//! quickly trip the threshold and fall back to the one rebuild they would
//! have paid anyway.
//!
//! [`UncertainDatabase`]: crate::UncertainDatabase
//! [`UncertainDatabase::index`]: crate::UncertainDatabase::index
//! [`DatabaseIndex`]: crate::DatabaseIndex
//! [`DatabaseIndex::apply_delta`]: crate::DatabaseIndex::apply_delta

use crate::Fact;
use std::sync::OnceLock;

/// Default delta-volume threshold: pending changesets larger than this drop
/// the cached index instead of patching it. Overridable per database via
/// [`UncertainDatabase::set_delta_threshold`] and process-wide via the
/// `CQA_DELTA_THRESHOLD` environment variable.
///
/// [`UncertainDatabase::set_delta_threshold`]: crate::UncertainDatabase::set_delta_threshold
pub const DEFAULT_DELTA_THRESHOLD: usize = 256;

/// The process-wide delta threshold: `CQA_DELTA_THRESHOLD` when set and
/// valid (parsed once), [`DEFAULT_DELTA_THRESHOLD`] otherwise. Invalid
/// values are reported loudly on stderr and counted as `config.env.invalid`,
/// matching the `cqa-exec` tuning knobs.
pub fn delta_threshold() -> usize {
    static CELL: OnceLock<usize> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var("CQA_DELTA_THRESHOLD") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(value) => value,
            Err(_) => {
                eprintln!(
                    "warning: ignoring invalid CQA_DELTA_THRESHOLD={raw:?} \
                     (expected a non-negative integer); using {DEFAULT_DELTA_THRESHOLD}"
                );
                cqa_obs::count!("config.env.invalid");
                DEFAULT_DELTA_THRESHOLD
            }
        },
        Err(_) => DEFAULT_DELTA_THRESHOLD,
    })
}

/// One recorded mutation of an [`UncertainDatabase`].
///
/// [`UncertainDatabase`]: crate::UncertainDatabase
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// A fact that was not present was inserted.
    Inserted(Fact),
    /// A present fact was removed.
    Removed {
        /// The removed fact.
        fact: Fact,
        /// True iff the removal emptied the fact's block, which removes the
        /// block by `swap_remove` and therefore **reorders block ids** —
        /// the structural event that forces [`DatabaseIndex::apply_delta`]
        /// onto its general (hash-matching) id-remapping path.
        ///
        /// [`DatabaseIndex::apply_delta`]: crate::DatabaseIndex::apply_delta
        emptied_block: bool,
    },
}

/// The net effect of the mutations recorded since a cached index snapshot
/// was built: which facts were inserted, which were removed, and whether any
/// block disappeared (reordering block ids).
///
/// Recording *nets out* transient facts: removing a fact that was itself
/// inserted after the snapshot cancels the insertion instead of growing the
/// log. A base fact that is removed and later re-inserted stays in **both**
/// lists — the snapshot's copy and the re-inserted copy are distinct
/// allocations, and the patcher tracks facts by allocation identity.
#[derive(Clone, Debug, Default)]
pub struct ChangeSet {
    inserted: Vec<Fact>,
    removed: Vec<Fact>,
    block_removed: bool,
}

impl ChangeSet {
    /// An empty changeset.
    pub fn new() -> Self {
        ChangeSet::default()
    }

    /// Records one mutation.
    pub fn record(&mut self, delta: Delta) {
        match delta {
            Delta::Inserted(fact) => self.inserted.push(fact),
            Delta::Removed {
                fact,
                emptied_block,
            } => {
                self.block_removed |= emptied_block;
                // A fact inserted after the snapshot and removed again nets
                // out entirely: the snapshot never saw it.
                if let Some(pos) = self.inserted.iter().position(|f| *f == fact) {
                    self.inserted.swap_remove(pos);
                } else {
                    self.removed.push(fact);
                }
            }
        }
    }

    /// Facts inserted since the snapshot (absent from it).
    pub fn inserted(&self) -> &[Fact] {
        &self.inserted
    }

    /// Facts removed since the snapshot (present in it).
    pub fn removed(&self) -> &[Fact] {
        &self.removed
    }

    /// True iff some removal emptied (and thus removed) a whole block.
    pub fn any_block_removed(&self) -> bool {
        self.block_removed
    }

    /// The delta volume: number of recorded insertions plus removals. This
    /// is what the fallback threshold is compared against.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// True iff nothing was recorded (the cached snapshot is current).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    /// Forgets all recorded mutations.
    pub fn clear(&mut self) {
        self.inserted.clear();
        self.removed.clear();
        self.block_removed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RelationId, Value};

    fn fact(a: &str, b: &str) -> Fact {
        Fact::new(
            RelationId::from_index(0),
            vec![Value::str(a), Value::str(b)],
        )
    }

    #[test]
    fn insert_then_remove_nets_out() {
        let mut cs = ChangeSet::new();
        cs.record(Delta::Inserted(fact("a", "b")));
        assert_eq!(cs.len(), 1);
        cs.record(Delta::Removed {
            fact: fact("a", "b"),
            emptied_block: false,
        });
        assert!(cs.is_empty());
        assert!(cs.inserted().is_empty() && cs.removed().is_empty());
    }

    #[test]
    fn remove_then_reinsert_keeps_both_sides() {
        let mut cs = ChangeSet::new();
        cs.record(Delta::Removed {
            fact: fact("a", "b"),
            emptied_block: true,
        });
        cs.record(Delta::Inserted(fact("a", "b")));
        assert_eq!(cs.removed().len(), 1);
        assert_eq!(cs.inserted().len(), 1);
        assert_eq!(cs.len(), 2);
        assert!(cs.any_block_removed());
        cs.clear();
        assert!(cs.is_empty());
        assert!(!cs.any_block_removed());
    }

    #[test]
    fn default_threshold_is_positive() {
        assert!(delta_threshold() >= 1 || delta_threshold() == 0);
        assert_eq!(DEFAULT_DELTA_THRESHOLD, 256);
    }
}
