//! The Theorem 4 solver: `CERTAINTY(AC(k))` and `CERTAINTY(C(k))` in P.
//!
//! `AC(k)` (Definition 8) consists of a directed cycle of binary key-to-value
//! atoms `R1(x1, x2), ..., Rk(xk, x1)` plus the all-key atom
//! `Sk(x1, ..., xk)`; `C(k)` omits the `Sk` atom. `AC(k)`'s attack graph has
//! only weak, **non-terminal** cycles (Figure 5), so Theorem 3 does not
//! apply; Theorem 4 nevertheless puts `CERTAINTY(AC(k))` in P, and the
//! Lemma 9 reduction extends this to `C(k)` (Corollary 1) — settling a
//! question left open by Fuxman and Miller.
//!
//! The algorithm is the one in the proof of Theorem 4. View the `Ri`-facts
//! of the (purified) database as the edges of a k-partite directed graph over
//! `(position, constant)` vertices. A repair picks one outgoing edge per
//! vertex; the query is falsified exactly when this can be done without
//! fully marking any *forbidden* k-cycle (a k-cycle encoded in `Sk`, or any
//! k-cycle at all for `C(k)`). Because the database is purified, the graph
//! splits into strong components with no edges between them, and a
//! falsifying marking exists iff **every** strong component contains either
//! a k-cycle that is not forbidden or an elementary cycle longer than `k`.

use super::CertaintySolver;
use cqa_data::{FxHashMap, FxHashSet, UncertainDatabase, Value};
use cqa_graph::paths::{for_each_cycle_of_length, has_elementary_cycle_longer_than};
use cqa_graph::scc::strongly_connected_components;
use cqa_graph::{DiGraph, NodeId};
use cqa_query::{purify, AtomId, ConjunctiveQuery, QueryError, Term, Variable};

/// The detected shape of a `C(k)` / `AC(k)` query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleQueryShape {
    /// The `k` of the family (number of cycle variables = number of binary atoms).
    pub k: usize,
    /// Atom ids of the binary atoms, in cycle order: `r_atoms[i]` joins
    /// `var_order[i]` to `var_order[(i + 1) % k]`.
    pub r_atoms: Vec<AtomId>,
    /// The all-key atom (`Sk`), if present — `Some` for `AC(k)`, `None` for `C(k)`.
    pub s_atom: Option<AtomId>,
    /// The cycle variables in order `x1, ..., xk`.
    pub var_order: Vec<Variable>,
}

/// Detects whether `query` is (isomorphic to) `C(k)` or `AC(k)`.
///
/// The `Sk` atom may list the cycle variables in any order (the solver
/// re-orders its facts); the binary atoms must have signature `[2, 1]` with
/// two distinct variables.
pub fn detect_cycle_query(query: &ConjunctiveQuery) -> Option<CycleQueryShape> {
    if !query.is_boolean() || query.has_self_join() {
        return None;
    }
    let schema = query.schema();
    let vars: Vec<Variable> = query.vars().into_iter().collect();
    let k = vars.len();
    if k < 2 {
        return None;
    }

    let mut r_atoms: Vec<AtomId> = Vec::new();
    let mut s_atom: Option<AtomId> = None;
    for (id, atom) in query.atoms_with_ids() {
        let rel = schema.relation(atom.relation());
        let all_var_terms = atom.terms().iter().all(Term::is_var);
        if rel.arity() == 2 && rel.key_len() == 1 && all_var_terms && atom.vars().len() == 2 {
            r_atoms.push(id);
        } else if rel.is_all_key()
            && rel.arity() == k
            && all_var_terms
            && atom.vars().len() == k
            && s_atom.is_none()
        {
            s_atom = Some(id);
        } else {
            return None;
        }
    }
    if r_atoms.len() != k {
        return None;
    }

    // The binary atoms must form a single directed cycle over all variables.
    let mut successor: FxHashMap<Variable, (Variable, AtomId)> = FxHashMap::default();
    let mut indegree: FxHashMap<Variable, usize> = FxHashMap::default();
    for &id in &r_atoms {
        let atom = query.atom(id);
        let from = atom.terms()[0].as_var()?.clone();
        let to = atom.terms()[1].as_var()?.clone();
        if from == to || successor.insert(from, (to.clone(), id)).is_some() {
            return None;
        }
        *indegree.entry(to).or_insert(0) += 1;
    }
    if indegree.values().any(|&d| d != 1) || indegree.len() != k {
        return None;
    }
    // Walk the cycle starting from the S atom's first variable if present
    // (matching the paper's x1), otherwise from an arbitrary variable.
    let start = match s_atom {
        Some(s) => query.atom(s).terms()[0].as_var()?.clone(),
        None => vars[0].clone(),
    };
    let mut var_order = vec![start.clone()];
    let mut ordered_atoms = Vec::new();
    let mut current = start.clone();
    for _ in 0..k {
        let (next, atom) = successor.get(&current)?.clone();
        ordered_atoms.push(atom);
        if next == start {
            break;
        }
        var_order.push(next.clone());
        current = next;
    }
    if var_order.len() != k || ordered_atoms.len() != k {
        return None;
    }
    Some(CycleQueryShape {
        k,
        r_atoms: ordered_atoms,
        s_atom,
        var_order,
    })
}

/// Which k-cycles of the constant graph are forbidden for a falsifying repair.
enum Forbidden {
    /// `C(k)`: every k-cycle is a query match, so every k-cycle is forbidden.
    All,
    /// `AC(k)`: exactly the cycles encoded by the `Sk` facts.
    Encoded(FxHashSet<Vec<Value>>),
}

/// Polynomial-time certainty solver for `C(k)` and `AC(k)` queries.
pub struct CycleQuerySolver {
    query: ConjunctiveQuery,
    shape: CycleQueryShape,
}

impl CycleQuerySolver {
    /// Builds the solver; fails if the query is not of `C(k)` / `AC(k)` shape.
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        let shape = detect_cycle_query(query).ok_or_else(|| QueryError::Unsupported {
            reason: "the Theorem 4 solver requires a C(k) or AC(k) query".into(),
        })?;
        Ok(CycleQuerySolver {
            query: query.clone(),
            shape,
        })
    }

    /// The detected shape.
    pub fn shape(&self) -> &CycleQueryShape {
        &self.shape
    }

    /// Runs the Theorem 4 decision procedure on a purified database.
    fn decide(&self, db: &UncertainDatabase) -> bool {
        let k = self.shape.k;
        // One index snapshot serves every per-relation pass below; the
        // k-partite graph and the forbidden-cycle set are then built without
        // re-scanning the blocks of the other relations.
        let index = db.index();

        // Vertices are (cycle position, constant); edges come from the Ri facts.
        let mut graph: DiGraph<(usize, Value)> = DiGraph::new();
        let mut ids: FxHashMap<(usize, Value), NodeId> = FxHashMap::default();
        let mut node = |graph: &mut DiGraph<(usize, Value)>, key: (usize, Value)| -> NodeId {
            match ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = graph.add_node(key.clone());
                    ids.insert(key, id);
                    id
                }
            }
        };
        for (pos, &atom_id) in self.shape.r_atoms.iter().enumerate() {
            let rel = self.query.atom(atom_id).relation();
            for fact in index.relation_facts(rel) {
                let from = node(&mut graph, (pos, fact.value(0).clone()));
                let to = node(&mut graph, ((pos + 1) % k, fact.value(1).clone()));
                graph.add_edge(from, to);
            }
        }

        // Forbidden k-cycles.
        let forbidden = match self.shape.s_atom {
            None => Forbidden::All,
            Some(s_id) => {
                let atom = self.query.atom(s_id);
                // Position of each cycle variable inside the S atom.
                let positions: Vec<usize> = self
                    .shape
                    .var_order
                    .iter()
                    .map(|v| {
                        atom.terms()
                            .iter()
                            .position(|t| t.as_var() == Some(v))
                            .expect("S atom contains every cycle variable")
                    })
                    .collect();
                let mut set = FxHashSet::default();
                for fact in index.relation_facts(atom.relation()) {
                    let vector: Vec<Value> =
                        positions.iter().map(|&p| fact.value(p).clone()).collect();
                    set.insert(vector);
                }
                Forbidden::Encoded(set)
            }
        };

        // Decompose into strong components; a falsifying marking exists iff
        // every component has a "good" cycle.
        let scc = strongly_connected_components(&graph);
        for component in &scc.components {
            // Build the induced subgraph of this component.
            let mut sub: DiGraph<(usize, Value)> = DiGraph::new();
            let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
            for &v in component {
                let id = sub.add_node(graph.node(v).clone());
                remap.insert(v, id);
            }
            for &v in component {
                for &w in graph.successors(v) {
                    if let Some(&rw) = remap.get(&w) {
                        sub.add_edge(remap[&v], rw);
                    }
                }
            }

            let good = match &forbidden {
                Forbidden::All => has_elementary_cycle_longer_than(&sub, k),
                Forbidden::Encoded(set) => {
                    let mut found_unforbidden = false;
                    for_each_cycle_of_length(&sub, k, |cycle| {
                        // Rotate the cycle so it starts at position 0, then read
                        // off the constants in cycle-position order.
                        let start = cycle
                            .iter()
                            .position(|&n| sub.node(n).0 == 0)
                            .expect("a k-cycle in the k-partite graph visits every position");
                        let vector: Vec<Value> = (0..k)
                            .map(|i| sub.node(cycle[(start + i) % k]).1.clone())
                            .collect();
                        if !set.contains(&vector) {
                            found_unforbidden = true;
                            true // stop early
                        } else {
                            false
                        }
                    });
                    found_unforbidden || has_elementary_cycle_longer_than(&sub, k)
                }
            };
            if !good {
                // This component forces every repair to contain a forbidden
                // (= query-matching) k-cycle: the query is certain.
                return true;
            }
        }
        false
    }
}

impl CertaintySolver for CycleQuerySolver {
    fn name(&self) -> &'static str {
        "cycle-query"
    }

    fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        let purified = purify::purify(db, &self.query);
        if purified.is_empty() {
            return false;
        }
        self.decide(&purified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::oracle::ExactOracle;
    use cqa_query::catalog;

    /// The Figure 6 database over the AC(3) schema.
    pub(crate) fn figure6_database(schema: &std::sync::Arc<cqa_data::Schema>) -> UncertainDatabase {
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("R1", ["a", "b"]).unwrap();
        db.insert_values("R1", ["a", "b'"]).unwrap();
        db.insert_values("R1", ["a'", "b"]).unwrap();
        db.insert_values("R2", ["b", "c"]).unwrap();
        db.insert_values("R2", ["b", "c'"]).unwrap();
        db.insert_values("R2", ["b'", "c"]).unwrap();
        db.insert_values("R3", ["c", "a"]).unwrap();
        db.insert_values("R3", ["c", "a'"]).unwrap();
        db.insert_values("R3", ["c'", "a"]).unwrap();
        db.insert_values("S3", ["a", "b", "c'"]).unwrap();
        db.insert_values("S3", ["a", "b'", "c"]).unwrap();
        db.insert_values("S3", ["a'", "b", "c"]).unwrap();
        db
    }

    #[test]
    fn shape_detection() {
        for k in 2..=5 {
            let ac = catalog::ac_k(k).query;
            let shape = detect_cycle_query(&ac).expect("AC(k) detected");
            assert_eq!(shape.k, k);
            assert!(shape.s_atom.is_some());
            assert_eq!(shape.r_atoms.len(), k);
            let c = catalog::c_k(k).query;
            let shape = detect_cycle_query(&c).expect("C(k) detected");
            assert_eq!(shape.k, k);
            assert!(shape.s_atom.is_none());
        }
        assert!(detect_cycle_query(&catalog::q0().query).is_none());
        assert!(detect_cycle_query(&catalog::fig4().query).is_none());
        assert!(detect_cycle_query(&catalog::conference().query).is_none());
    }

    #[test]
    fn figure6_instance_is_not_certain() {
        // Figure 7 exhibits two repairs falsifying AC(3), so the Figure 6
        // database is not in CERTAINTY(AC(3)).
        let q = catalog::ac_k(3).query;
        let solver = CycleQuerySolver::new(&q).unwrap();
        let db = figure6_database(q.schema());
        assert!(!solver.is_certain(&db));
        // Cross-check with brute force (8 repairs).
        let oracle = ExactOracle::new(&q).unwrap();
        assert!(!oracle.is_certain_bruteforce(&db));
    }

    #[test]
    fn making_the_anticlockwise_cycle_forbidden_flips_the_answer() {
        // Add the three "anticlockwise" triangles to S3 as well: now every
        // 3-cycle of the graph is encoded, the component has no good cycle of
        // length 3, and (as it also has a 6-cycle) ... the repair could still
        // avoid a forbidden cycle via the long cycle, so the instance stays
        // uncertain. Forbid nothing less: instead shrink the instance to the
        // single consistent triangle, which is trivially certain.
        let q = catalog::ac_k(3).query;
        let solver = CycleQuerySolver::new(&q).unwrap();
        let mut db = UncertainDatabase::new(q.schema().clone());
        db.insert_values("R1", ["a", "b"]).unwrap();
        db.insert_values("R2", ["b", "c"]).unwrap();
        db.insert_values("R3", ["c", "a"]).unwrap();
        db.insert_values("S3", ["a", "b", "c"]).unwrap();
        assert!(solver.is_certain(&db));
        let oracle = ExactOracle::new(&q).unwrap();
        assert!(oracle.is_certain_bruteforce(&db));
        // Remove the S3 tuple: the query can no longer be satisfied at all.
        let s3 = db.schema().relation_id("S3").unwrap();
        db.retain_facts(|f| f.relation() != s3);
        assert!(!solver.is_certain(&db));
    }

    #[test]
    fn ac3_random_instances_match_brute_force() {
        let q = catalog::ac_k(3).query;
        let solver = CycleQuerySolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..60 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            let dom = 2 + (seed % 2) as usize;
            for _ in 0..4 {
                let a = format!("a{}", next() % dom);
                let b = format!("b{}", next() % dom);
                let c = format!("c{}", next() % dom);
                db.insert_values("R1", [a.clone(), b.clone()]).unwrap();
                db.insert_values("R2", [b.clone(), c.clone()]).unwrap();
                db.insert_values("R3", [c.clone(), a.clone()]).unwrap();
                if next() % 2 == 0 {
                    db.insert_values("S3", [a, b, c]).unwrap();
                }
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn c3_random_instances_match_brute_force() {
        let q = catalog::c_k(3).query;
        let solver = CycleQuerySolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..60 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(23);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            let dom = 2;
            for _ in 0..4 {
                db.insert_values(
                    "R1",
                    [format!("a{}", next() % dom), format!("b{}", next() % dom)],
                )
                .unwrap();
                db.insert_values(
                    "R2",
                    [format!("b{}", next() % dom), format!("c{}", next() % dom)],
                )
                .unwrap();
                db.insert_values(
                    "R3",
                    [format!("c{}", next() % dom), format!("a{}", next() % dom)],
                )
                .unwrap();
            }
            assert_eq!(
                solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn c2_instances_match_the_terminal_cycle_solver() {
        // C(2) can be answered both by Theorem 3 (it is acyclic with a weak
        // terminal cycle) and by the Theorem 4 machinery; they must agree.
        let q = catalog::c_k(2).query;
        let cycle_solver = CycleQuerySolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..50 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x853C49E6748FEA9B).wrapping_add(29);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..5 {
                db.insert_values(
                    "R1",
                    [format!("a{}", next() % 3), format!("b{}", next() % 3)],
                )
                .unwrap();
                db.insert_values(
                    "R2",
                    [format!("b{}", next() % 3), format!("a{}", next() % 3)],
                )
                .unwrap();
            }
            assert_eq!(
                cycle_solver.is_certain(&db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }
}
