//! Shared physical-operator machinery: the register file and probe specs.
//!
//! Both plan kinds ([`crate::QueryPlan`] and [`crate::FoPlan`]) compile
//! variables down to dense **slots** in a register file and atoms down to
//! [`ProbeSpec`]s. A probe spec is the compile-time answer to the questions
//! the interpreters re-derive on every call: *which positions of this atom
//! are bound here* (they become the probe key of a
//! [`cqa_data::PositionIndex`]), and *what to do with the remaining
//! positions of each candidate fact* (bind a register, check a register,
//! check a constant).

use cqa_data::{DatabaseIndex, Fact, PositionIndex, PositionSet, RelationId, Value};
use cqa_query::{Term, Variable};
use std::sync::Arc;

/// Dense register index of a compiled variable.
pub(crate) type Slot = usize;

/// The runtime register file: one optional [`Value`] per slot.
pub(crate) struct Registers {
    values: Vec<Option<Value>>,
}

impl Registers {
    pub(crate) fn new(slots: usize) -> Self {
        Registers {
            values: vec![None; slots],
        }
    }

    pub(crate) fn get(&self, slot: Slot) -> Option<&Value> {
        self.values[slot].as_ref()
    }

    pub(crate) fn set(&mut self, slot: Slot, value: Value) {
        self.values[slot] = Some(value);
    }

    pub(crate) fn clear(&mut self, slot: Slot) {
        self.values[slot] = None;
    }

    /// Undoes the writes recorded in `writes` (newest first is irrelevant:
    /// each recorded slot was `None` before) and truncates the log.
    pub(crate) fn undo(&mut self, writes: &mut Vec<Slot>) {
        for slot in writes.drain(..) {
            self.values[slot] = None;
        }
    }
}

/// Where one component of a probe key comes from.
#[derive(Clone, Debug)]
pub(crate) enum KeySource {
    /// A constant from the query/formula.
    Const(Value),
    /// The current value of a register (bound by an earlier operator or by
    /// the caller's initial bindings).
    Slot(Slot),
}

impl KeySource {
    pub(crate) fn resolve(&self, regs: &Registers) -> Option<Value> {
        match self {
            KeySource::Const(c) => Some(c.clone()),
            KeySource::Slot(s) => regs.get(*s).cloned(),
        }
    }
}

/// What to do with a candidate fact's value at one non-probed position.
#[derive(Clone, Debug)]
pub(crate) enum PosAction {
    /// First occurrence of a variable: write the register (or, if the caller
    /// pre-bound it, check it — `satisfies_with` base bindings).
    Bind { pos: usize, slot: Slot },
    /// Repeated occurrence of a bound variable (or a variable at a position
    /// beyond the index's probe width): the value must equal the register.
    CheckSlot { pos: usize, slot: Slot },
    /// A constant at a position beyond the index's probe width.
    CheckConst { pos: usize, value: Value },
}

/// A compiled atom access: relation, probed position subset, the recipe for
/// the probe key, and the per-candidate actions for all other positions.
#[derive(Clone, Debug)]
pub(crate) struct ProbeSpec {
    pub(crate) relation: RelationId,
    pub(crate) positions: PositionSet,
    pub(crate) key: Vec<KeySource>,
    pub(crate) actions: Vec<PosAction>,
    /// Index into the prepared plan's probe-handle table.
    pub(crate) probe_id: usize,
    /// Cost-model estimate of the number of candidates per probe (explain
    /// output only; never consulted at execution time).
    pub(crate) estimated_rows: f64,
}

/// How the spec builder should treat one variable occurrence.
pub(crate) enum SlotState {
    /// The variable is bound before this operator runs.
    Bound(Slot),
    /// The variable is free here; this operator's scan binds it.
    Unbound(Slot),
}

impl ProbeSpec {
    /// Compiles the access to one atom. `resolve` maps each variable to its
    /// slot plus whether it is bound *before* this operator runs; positions
    /// holding constants or bound variables (up to the index's probe width)
    /// become the probe key, everything else becomes a per-candidate action.
    pub(crate) fn build(
        relation: RelationId,
        terms: &[Term],
        resolve: &mut dyn FnMut(&Variable) -> SlotState,
        probe_id: usize,
    ) -> ProbeSpec {
        let mut positions = PositionSet::empty();
        let mut key = Vec::new();
        let mut actions = Vec::new();
        let mut bound_here: Vec<Slot> = Vec::new();
        for (pos, term) in terms.iter().enumerate() {
            let probe_ok = pos < PositionSet::MAX_POSITIONS;
            match term {
                Term::Const(c) => {
                    if probe_ok {
                        positions.insert(pos);
                        key.push(KeySource::Const(c.clone()));
                    } else {
                        actions.push(PosAction::CheckConst {
                            pos,
                            value: c.clone(),
                        });
                    }
                }
                Term::Var(v) => match resolve(v) {
                    SlotState::Bound(slot) => {
                        if probe_ok {
                            positions.insert(pos);
                            key.push(KeySource::Slot(slot));
                        } else {
                            actions.push(PosAction::CheckSlot { pos, slot });
                        }
                    }
                    SlotState::Unbound(slot) => {
                        if bound_here.contains(&slot) {
                            actions.push(PosAction::CheckSlot { pos, slot });
                        } else {
                            bound_here.push(slot);
                            actions.push(PosAction::Bind { pos, slot });
                        }
                    }
                },
            }
        }
        ProbeSpec {
            relation,
            positions,
            key,
            actions,
            probe_id,
            estimated_rows: 0.0,
        }
    }

    /// The slots this spec's `Bind` actions write, in position order.
    pub(crate) fn bound_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.actions.iter().filter_map(|a| match a {
            PosAction::Bind { slot, .. } => Some(*slot),
            _ => None,
        })
    }

    /// Resolves the candidate fact ids for the current registers: a hash
    /// probe when positions are bound, the relation's full fact list
    /// otherwise. `None` means some key register is unbound, i.e. *no*
    /// candidate can match (the caller decides what that means — `false`
    /// for an existential scan, vacuous truth for a block-∀).
    pub(crate) fn candidates<'a>(
        &self,
        index: &'a DatabaseIndex,
        handle: Option<&'a Arc<PositionIndex>>,
        regs: &Registers,
    ) -> Option<Candidates<'a>> {
        match handle {
            None => Some(Candidates::All(index.relation_fact_ids(self.relation))),
            Some(pindex) => {
                let key: Option<Vec<Value>> =
                    self.key.iter().map(|src| src.resolve(regs)).collect();
                Some(Candidates::Probe(pindex.candidates_shared(&key?)))
            }
        }
    }

    /// Applies the per-candidate actions to `fact`. Newly written slots are
    /// recorded in `writes`; on a failed check the caller must
    /// [`Registers::undo`] (the recorded prefix may already be written).
    pub(crate) fn apply(&self, fact: &Fact, regs: &mut Registers, writes: &mut Vec<Slot>) -> bool {
        for action in &self.actions {
            match action {
                PosAction::Bind { pos, slot } => {
                    let value = fact.value(*pos);
                    match regs.get(*slot) {
                        Some(existing) => {
                            if existing != value {
                                return false;
                            }
                        }
                        None => {
                            regs.set(*slot, value.clone());
                            writes.push(*slot);
                        }
                    }
                }
                PosAction::CheckSlot { pos, slot } => {
                    if regs.get(*slot) != Some(fact.value(*pos)) {
                        return false;
                    }
                }
                PosAction::CheckConst { pos, value } => {
                    if fact.value(*pos) != value {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Renders the access pattern for `explain` output, e.g.
    /// `R('Rome', x, ↦y, =y)`: probed constants/registers, then `↦v` for a
    /// binding position and `=v` for an equality check.
    pub(crate) fn render(&self, schema: &cqa_data::Schema, slot_names: &[Variable]) -> String {
        let relation = &schema.relation(self.relation).name;
        let arity = schema.relation(self.relation).arity();
        let mut parts: Vec<String> = vec![String::from("*"); arity];
        let mut key_iter = self.key.iter();
        for pos in self.positions.iter() {
            if let Some(src) = key_iter.next() {
                parts[pos] = match src {
                    KeySource::Const(c) => format!("{c:?}"),
                    KeySource::Slot(s) => slot_names[*s].to_string(),
                };
            }
        }
        for action in &self.actions {
            match action {
                PosAction::Bind { pos, slot } => {
                    parts[*pos] = format!("↦{}", slot_names[*slot]);
                }
                PosAction::CheckSlot { pos, slot } => {
                    parts[*pos] = format!("={}", slot_names[*slot]);
                }
                PosAction::CheckConst { pos, value } => {
                    parts[*pos] = format!("={value:?}");
                }
            }
        }
        let access = if self.positions.is_empty() {
            "scan"
        } else {
            "probe"
        };
        format!("{access} {relation}({})", parts.join(", "))
    }
}

/// The candidate fact ids of one probe at one search node.
pub(crate) enum Candidates<'a> {
    /// Every fact of the relation (no position bound).
    All(&'a [u32]),
    /// The resolved bucket of a position index.
    Probe(Arc<[u32]>),
}

impl Candidates<'_> {
    pub(crate) fn ids(&self) -> &[u32] {
        match self {
            Candidates::All(ids) => ids,
            Candidates::Probe(ids) => ids,
        }
    }
}
