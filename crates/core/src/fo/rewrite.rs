//! Construction of the certain first-order rewriting `φ_q` (Theorem 1).
//!
//! For a query whose attack graph is acyclic, a certain rewriting is obtained
//! by repeatedly eliminating an unattacked atom `F = R(x̄, ȳ)`:
//!
//! ```text
//! φ_q  =  ∃ vars(F) [ R(x̄, ȳ)  ∧  ∀ w̄ ( R(x̄, w̄) → ( ȳ-pattern holds on w̄  ∧  φ_{(q∖{F})[ȳ ↦ w̄]} ) ) ]
//! ```
//!
//! i.e. *some* block of `R` matches the key pattern and **every** fact of
//! that block both matches the remaining pattern of `F` and makes the rest of
//! the query certain. This is the syntactic counterpart of the recursion in
//! [`crate::solvers::RewritingSolver`]; the test suite checks that evaluating
//! the formula with the generic model checker gives the same answers as the
//! solver and as the brute-force oracle.

use super::FoFormula;
use crate::attack::AttackGraph;
use cqa_data::FxHashMap;
use cqa_query::{Atom, ConjunctiveQuery, QueryError, Term, Variable};

/// Builds the certain first-order rewriting of `query`.
///
/// Fails if the query is not Boolean, has a self-join, is cyclic, or its
/// attack graph has a cycle (Theorem 1: no certain rewriting exists then).
pub fn certain_rewriting(query: &ConjunctiveQuery) -> Result<FoFormula, QueryError> {
    query.require_boolean()?;
    query.require_self_join_free()?;
    let graph = AttackGraph::build(query)?;
    if !graph.is_acyclic() {
        return Err(QueryError::Unsupported {
            reason: "the attack graph has a cycle: CERTAINTY(q) is not first-order expressible \
                     (Theorem 1)"
                .into(),
        });
    }
    let mut fresh = 0usize;
    Ok(rewrite(
        query,
        &std::collections::BTreeSet::new(),
        &mut fresh,
    ))
}

/// Builds an **open** certain rewriting `φ(x̄)` for a query with free
/// variables `x̄`: for every tuple `t` over the active domain,
/// `φ(x̄)[x̄ ↦ t]` is a certain rewriting of the ground query `q[x̄ ↦ t]` —
/// so `t` is a certain answer iff `φ(x̄)` holds under `x̄ ↦ t`.
///
/// The recursion of [`certain_rewriting`] already treats enclosing-quantifier
/// variables as opaque constants; seeding it with the free variables yields
/// the open formula. This is sound for *every* tuple `t` at once because the
/// attack graph — and with it the unattacked-atom elimination order — depends
/// only on the variable structure: constants never participate in keys or
/// attacks, so `q[x̄ ↦ t]` has the same attack graph for all `t` (including
/// tuples with repeated components; a self-join-free query has no two atoms
/// that could collapse under the substitution).
///
/// Fails if the query has a self-join, is cyclic, or the attack graph of the
/// frozen (Boolean) query has a cycle. Boolean queries reduce to
/// [`certain_rewriting`].
pub fn certain_rewriting_open(query: &ConjunctiveQuery) -> Result<FoFormula, QueryError> {
    let free: std::collections::BTreeSet<Variable> = query.free_vars().iter().cloned().collect();
    if free.is_empty() {
        return certain_rewriting(query);
    }
    query.require_self_join_free()?;
    // FO-expressibility check on the frozen query (free variables become
    // placeholder constants, the `q[x̄ ↦ ā]` substitution of Lemma 5).
    let freeze_map: FxHashMap<Variable, cqa_data::Value> = free
        .iter()
        .map(|v| (v.clone(), cqa_data::Value::str(format!("⟂frozen:{v}"))))
        .collect();
    let frozen = cqa_query::substitute::substitute_map(query, &freeze_map);
    let graph = AttackGraph::build(&frozen)?;
    if !graph.is_acyclic() {
        return Err(QueryError::Unsupported {
            reason: "the attack graph has a cycle: CERTAINTY(q) is not first-order expressible \
                     (Theorem 1)"
                .into(),
        });
    }
    let mut fresh = 0usize;
    Ok(rewrite(query, &free, &mut fresh))
}

fn fresh_var(counter: &mut usize) -> Variable {
    let v = Variable::new(format!("w@{counter}"));
    *counter += 1;
    v
}

/// Renames variables in a query according to `map` (variable-to-variable).
fn rename_query(query: &ConjunctiveQuery, map: &FxHashMap<Variable, Variable>) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = query
        .atoms()
        .iter()
        .map(|a| {
            let terms: Vec<Term> = a
                .terms()
                .iter()
                .map(|t| match t {
                    Term::Var(v) => match map.get(v) {
                        Some(w) => Term::Var(w.clone()),
                        None => t.clone(),
                    },
                    Term::Const(_) => t.clone(),
                })
                .collect();
            Atom::new(a.relation(), terms)
        })
        .collect();
    ConjunctiveQuery::boolean(query.schema().clone(), atoms)
        .expect("renaming preserves well-formedness")
}

/// `bound` holds the variables already quantified by enclosing steps of the
/// rewriting; they occur free in the current subformula and must not be
/// re-quantified.
fn rewrite(
    query: &ConjunctiveQuery,
    bound: &std::collections::BTreeSet<Variable>,
    fresh: &mut usize,
) -> FoFormula {
    if query.is_empty() {
        return FoFormula::True;
    }
    // Choose the next unattacked atom as the *solver* would: variables bound
    // by enclosing quantifiers behave like constants at this point of the
    // recursion, so freeze them before computing the attack graph (this is
    // exactly the `q[x̄ ↦ ā]` substitution of Corollary 8.11 / Lemma 5, with
    // placeholder constants standing in for the unknown ā).
    let freeze_map: FxHashMap<Variable, cqa_data::Value> = query
        .vars()
        .into_iter()
        .filter(|v| bound.contains(v))
        .map(|v| {
            let placeholder = cqa_data::Value::str(format!("⟂frozen:{v}"));
            (v, placeholder)
        })
        .collect();
    let frozen = cqa_query::substitute::substitute_map(query, &freeze_map);
    let graph = AttackGraph::build(&frozen).expect("rewriting recursion preserves acyclicity");
    let atom_id = graph
        .unattacked_atoms()
        .into_iter()
        .next()
        .expect("acyclic attack graphs have an unattacked atom (Lemma 5)");
    let schema = query.schema().clone();
    let f = query.atom(atom_id).clone();
    let residual = query.without_atom(atom_id);
    let key_len = schema.relation(f.relation()).key_len();
    let key_vars = f.key_vars(&schema);

    // Fresh universally-quantified variables for the non-key positions.
    let mut forall_vars: Vec<Variable> = Vec::new();
    let mut guard_terms: Vec<Term> = f.terms()[..key_len].to_vec();
    let mut equalities: Vec<FoFormula> = Vec::new();
    // Maps single-use non-key variables of F to their fresh replacement.
    let mut replacement: FxHashMap<Variable, Variable> = FxHashMap::default();

    for term in &f.terms()[key_len..] {
        let w = fresh_var(fresh);
        forall_vars.push(w.clone());
        guard_terms.push(Term::Var(w.clone()));
        match term {
            Term::Const(c) => {
                equalities.push(FoFormula::Equals(Term::Var(w), Term::Const(c.clone())));
            }
            Term::Var(v) => {
                if let Some(first) = replacement.get(v) {
                    // Repeated non-key variable: both positions must agree.
                    equalities.push(FoFormula::Equals(Term::Var(w), Term::Var(first.clone())));
                } else if key_vars.contains(v) || bound.contains(v) {
                    // The variable is pinned either by the key part of this
                    // step's ∃ or by an enclosing quantifier.
                    equalities.push(FoFormula::Equals(Term::Var(w), Term::Var(v.clone())));
                } else {
                    replacement.insert(v.clone(), w);
                }
            }
        }
    }

    // Variables in scope for the residual subformula.
    let mut bound_next = bound.clone();
    bound_next.extend(f.vars());
    bound_next.extend(forall_vars.iter().cloned());

    let renamed_residual = rename_query(&residual, &replacement);
    let inner = FoFormula::and(
        equalities
            .into_iter()
            .chain(std::iter::once(rewrite(
                &renamed_residual,
                &bound_next,
                fresh,
            )))
            .collect(),
    );
    let forall = FoFormula::forall(
        forall_vars,
        FoFormula::Implies(
            Box::new(FoFormula::atom(f.relation(), guard_terms)),
            Box::new(inner),
        ),
    );
    let witness = FoFormula::atom(f.relation(), f.terms().to_vec());
    // Quantify only the variables of F that are not already bound outside.
    let exists_vars: Vec<Variable> = f
        .vars()
        .into_iter()
        .filter(|v| !bound.contains(v))
        .collect();
    FoFormula::exists(exists_vars, FoFormula::and(vec![witness, forall]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::eval::evaluate_sentence;
    use crate::solvers::{CertaintySolver, ExactOracle, RewritingSolver};
    use cqa_data::UncertainDatabase;
    use cqa_query::catalog;

    #[test]
    fn rejects_non_fo_queries() {
        assert!(certain_rewriting(&catalog::q1().query).is_err());
        assert!(certain_rewriting(&catalog::c2_swap().query).is_err());
        assert!(certain_rewriting(&catalog::ac_k(3).query).is_err());
    }

    #[test]
    fn conference_rewriting_matches_the_solver_and_oracle() {
        let q = catalog::conference().query;
        let formula = certain_rewriting(&q).unwrap();
        let solver = RewritingSolver::new(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let db = catalog::conference_database();
        assert!(!evaluate_sentence(&formula, &db));
        assert!(!solver.is_certain(&db));
        // A certain variant.
        let mut fixed = db.clone();
        let c = fixed.schema().relation_id("C").unwrap();
        fixed.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        assert!(evaluate_sentence(&formula, &fixed));
        assert!(solver.is_certain(&fixed));
        assert!(oracle.is_certain_bruteforce(&fixed));
    }

    #[test]
    fn path2_rewriting_agrees_with_the_oracle_on_a_sweep() {
        let q = catalog::fo_path2().query;
        let formula = certain_rewriting(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let schema = q.schema().clone();
        for seed in 0u64..40 {
            let mut db = UncertainDatabase::new(schema.clone());
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(101);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            for _ in 0..4 {
                db.insert_values(
                    "R",
                    [format!("a{}", next() % 2), format!("b{}", next() % 2)],
                )
                .unwrap();
                db.insert_values(
                    "S",
                    [format!("b{}", next() % 2), format!("c{}", next() % 2)],
                )
                .unwrap();
            }
            assert_eq!(
                evaluate_sentence(&formula, &db),
                oracle.is_certain_bruteforce(&db),
                "seed {seed}\n{db}"
            );
        }
    }

    #[test]
    fn rewriting_handles_constants_and_repeated_variables() {
        // q = {R(x; y, y), S(y; 'v')}: non-key repetition and a constant.
        let schema = cqa_data::Schema::from_relations([("R", 3, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::constant("v")])
            .build()
            .unwrap();
        let formula = certain_rewriting(&q).unwrap();
        let oracle = ExactOracle::new(&q).unwrap();
        let mut db = UncertainDatabase::new(schema);
        db.insert_values("R", ["k", "b", "b"]).unwrap();
        db.insert_values("S", ["b", "v"]).unwrap();
        assert!(evaluate_sentence(&formula, &db));
        assert!(oracle.is_certain_bruteforce(&db));
        // Add a conflicting R fact whose two value columns differ: the block
        // no longer guarantees the repeated-variable pattern.
        db.insert_values("R", ["k", "b", "c"]).unwrap();
        assert_eq!(
            evaluate_sentence(&formula, &db),
            oracle.is_certain_bruteforce(&db)
        );
        assert!(!evaluate_sentence(&formula, &db));
    }

    #[test]
    fn formula_size_grows_with_query_length() {
        let small = certain_rewriting(&catalog::fo_path2().query).unwrap();
        let large = certain_rewriting(&catalog::fo_path3().query).unwrap();
        assert!(large.size() > small.size());
    }
}
