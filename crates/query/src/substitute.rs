//! Substitution of constants for variables (Definition 7).
//!
//! `q[x̄ ↦ ā]` denotes the query obtained from `q` by replacing each
//! occurrence of `xi` with `ai`. The tractability proofs (Theorem 3 and the
//! first-order rewriting of Theorem 1) repeatedly ground key variables of an
//! unattacked atom and recurse on the substituted query.

use crate::{Atom, ConjunctiveQuery, Term, Valuation, Variable};
use cqa_data::Value;
use rustc_hash::FxHashMap;

/// Applies a variable-to-constant substitution to an atom.
pub fn substitute_atom(atom: &Atom, map: &FxHashMap<Variable, Value>) -> Atom {
    let terms: Vec<Term> = atom
        .terms()
        .iter()
        .map(|t| match t {
            Term::Var(v) => match map.get(v) {
                Some(value) => Term::Const(value.clone()),
                None => t.clone(),
            },
            Term::Const(_) => t.clone(),
        })
        .collect();
    Atom::new(atom.relation(), terms)
}

/// The query `q[x ↦ a]`.
pub fn substitute_var(query: &ConjunctiveQuery, var: &Variable, value: &Value) -> ConjunctiveQuery {
    let mut map = FxHashMap::default();
    map.insert(var.clone(), value.clone());
    substitute_map(query, &map)
}

/// The query `q[x̄ ↦ ā]` for an arbitrary mapping.
///
/// Free variables that get substituted are removed from the free-variable
/// list (the query becomes "more Boolean").
pub fn substitute_map(
    query: &ConjunctiveQuery,
    map: &FxHashMap<Variable, Value>,
) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = query
        .atoms()
        .iter()
        .map(|a| substitute_atom(a, map))
        .collect();
    // Collapse duplicates that may be created by the substitution
    // (e.g. R(x) and R(y) both become R(a)).
    let mut unique: Vec<Atom> = Vec::with_capacity(atoms.len());
    for a in atoms {
        if !unique.contains(&a) {
            unique.push(a);
        }
    }
    let free: Vec<Variable> = query
        .free_vars()
        .iter()
        .filter(|v| !map.contains_key(v))
        .cloned()
        .collect();
    query.with_atoms(unique, free)
}

/// The query `q[x̄ ↦ ā]` for parallel sequences of variables and values.
pub fn substitute_seq(
    query: &ConjunctiveQuery,
    vars: &[Variable],
    values: &[Value],
) -> ConjunctiveQuery {
    debug_assert_eq!(vars.len(), values.len());
    let map: FxHashMap<Variable, Value> =
        vars.iter().cloned().zip(values.iter().cloned()).collect();
    substitute_map(query, &map)
}

/// Grounds a query with a valuation: every bound variable is replaced by its
/// value. (Partial valuations ground only the bound variables.)
pub fn ground_with(query: &ConjunctiveQuery, valuation: &Valuation) -> ConjunctiveQuery {
    let map: FxHashMap<Variable, Value> = query
        .vars()
        .into_iter()
        .filter_map(|v| valuation.get(&v).map(|val| (v.clone(), val.clone())))
        .collect();
    substitute_map(query, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared()
    }

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery::builder(schema())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("x")])
            .build()
            .unwrap()
    }

    #[test]
    fn substitution_replaces_every_occurrence() {
        let q = query();
        let q2 = substitute_var(&q, &Variable::new("x"), &Value::str("a"));
        assert_eq!(q2.to_string(), "q() :- R('a'; y), S(y; 'a')");
        // The original query is untouched (persistent data structure style).
        assert_eq!(q.to_string(), "q() :- R(x; y), S(y; x)");
        assert_eq!(q2.vars().len(), 1);
    }

    #[test]
    fn substituting_all_variables_grounds_the_query() {
        let q = query();
        let q2 = substitute_seq(
            &q,
            &[Variable::new("x"), Variable::new("y")],
            &[Value::str("a"), Value::str("b")],
        );
        assert!(q2.vars().is_empty());
        assert!(q2.atoms().iter().all(Atom::is_ground));
    }

    #[test]
    fn duplicate_atoms_after_substitution_are_collapsed() {
        let schema = Schema::from_relations([("R", 1, 1)]).unwrap().into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x")])
            .atom("R", [Term::var("y")])
            .build()
            .unwrap();
        assert_eq!(q.len(), 2);
        let grounded = substitute_seq(
            &q,
            &[Variable::new("x"), Variable::new("y")],
            &[Value::str("a"), Value::str("a")],
        );
        assert_eq!(grounded.len(), 1);
    }

    #[test]
    fn free_variables_are_dropped_when_substituted() {
        let q = ConjunctiveQuery::builder(schema())
            .atom("R", [Term::var("x"), Term::var("y")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let q2 = substitute_var(&q, &Variable::new("x"), &Value::str("a"));
        assert!(q2.is_boolean());
    }

    #[test]
    fn grounding_with_a_partial_valuation() {
        let q = query();
        let mut v = Valuation::new();
        v.bind(Variable::new("y"), Value::str("b"));
        let q2 = ground_with(&q, &v);
        assert_eq!(q2.vars().len(), 1);
        assert!(q2.vars().contains(&Variable::new("x")));
    }
}
