//! Certain-answer solvers, one per region of the tractability frontier.
//!
//! | solver | region | paper |
//! |---|---|---|
//! | [`RewritingSolver`] | acyclic attack graph | Theorem 1 (via the rewriting of [Wijsen 2012]) |
//! | [`TerminalCycleSolver`] | weak terminal cycles | Theorem 3 |
//! | [`CycleQuerySolver`] | `AC(k)` / `C(k)` | Theorem 4, Corollary 1 |
//! | [`TwoAtomSolver`] | two-atom queries | Kolaitis–Pema (used as the Theorem 3 base case) |
//! | [`ExactOracle`] | any query | brute-force / backtracking baseline (coNP region) |
//!
//! [`CertaintyEngine`] classifies the query once and dispatches to the most
//! specific solver; it is the public entry point a downstream user should
//! reach for.

pub mod cycle_query;
pub mod oracle;
pub mod rewriting;
pub mod terminal_cycles;
pub mod two_atom;

pub use cycle_query::CycleQuerySolver;
pub use oracle::ExactOracle;
pub use rewriting::RewritingSolver;
pub use terminal_cycles::TerminalCycleSolver;
pub use two_atom::TwoAtomSolver;

use crate::classify::{classify, Classification, ComplexityClass, PtimeReason};
use cqa_data::UncertainDatabase;
use cqa_exec::{FoPlan, QueryPlan};
use cqa_query::{ConjunctiveQuery, QueryError};
use std::sync::OnceLock;

/// A decision procedure for `CERTAINTY(q)` with the query fixed at
/// construction time (the paper studies data complexity: the query is not
/// part of the input).
pub trait CertaintySolver {
    /// A short human-readable name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// The query this solver answers certainty for.
    fn query(&self) -> &ConjunctiveQuery;

    /// True iff **every repair** of `db` satisfies the query.
    fn is_certain(&self, db: &UncertainDatabase) -> bool;

    /// The compiled physical plan the solver executes, rendered for
    /// `explain` output — `None` for solvers that do not compile one.
    fn explain_plan(&self, _db: &UncertainDatabase) -> Option<String> {
        None
    }

    /// The compiled certain-rewriting plan the solver evaluates, when it
    /// has one (the Theorem 1 region). `cqa-par` shards `is_certain` over
    /// this plan's root candidate space; solvers without a rewriting plan
    /// return `None` and are evaluated sequentially.
    fn rewriting_plan(&self, _db: &UncertainDatabase) -> Option<&FoPlan> {
        None
    }
}

/// The automatic solver: classifies the query and picks the best algorithm.
///
/// The engine also owns the compiled satisfaction plan of the query (the
/// [`QueryPlan`] deciding `db |= q`, which is the "possible" side of
/// certainty by monotonicity), compiled once on first use and cached.
pub struct CertaintyEngine {
    classification: Classification,
    solver: Box<dyn CertaintySolver + Send + Sync>,
    satisfaction_plan: OnceLock<QueryPlan>,
}

impl CertaintyEngine {
    /// Classifies `query` and builds the most specific applicable solver.
    ///
    /// This is the front door of the crate: construction classifies the
    /// query once (data complexity: the query is fixed, the data varies),
    /// and every later [`CertaintyEngine::is_certain`] call runs the most
    /// specific solver's compiled plan.
    ///
    /// ```
    /// use cqa_core::solvers::{CertaintyEngine, CertaintySolver};
    /// use cqa_query::catalog;
    ///
    /// // Figure 1: will Rome certainly host an A-ranked conference?
    /// let engine = CertaintyEngine::new(&catalog::conference().query)?;
    /// assert_eq!(engine.solver_name(), "rewriting"); // Theorem 1 region
    ///
    /// let db = catalog::conference_database();
    /// assert!(engine.is_possible(&db));  // true in some repair
    /// assert!(!engine.is_certain(&db));  // but not in every repair
    /// # Ok::<(), cqa_query::QueryError>(())
    /// ```
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        let classification = classify(query)?;
        let solver: Box<dyn CertaintySolver + Send + Sync> = match &classification.class {
            ComplexityClass::FirstOrderExpressible => {
                cqa_obs::count!("core.classify.fo");
                Box::new(RewritingSolver::new(query)?)
            }
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles) => {
                cqa_obs::count!("core.classify.ptime_terminal_cycle");
                Box::new(TerminalCycleSolver::new(query)?)
            }
            ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { .. })
            | ComplexityClass::PolynomialTime(PtimeReason::CycleQueryC { .. }) => {
                cqa_obs::count!("core.classify.ptime_cycle_query");
                Box::new(CycleQuerySolver::new(query)?)
            }
            ComplexityClass::CoNpComplete => {
                cqa_obs::count!("core.classify.conp");
                Box::new(ExactOracle::new(query)?)
            }
            ComplexityClass::OpenConjecturedPtime => {
                cqa_obs::count!("core.classify.open");
                Box::new(ExactOracle::new(query)?)
            }
            ComplexityClass::OutsideAcyclicScope => {
                cqa_obs::count!("core.classify.outside");
                Box::new(ExactOracle::new(query)?)
            }
        };
        Ok(CertaintyEngine {
            classification,
            solver,
            satisfaction_plan: OnceLock::new(),
        })
    }

    /// The classification computed at construction time.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The name of the solver the engine dispatched to.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// The compiled join plan deciding `db |= q`, compiled on first use
    /// (with `db`'s statistics) and cached on the engine.
    pub fn satisfaction_plan(&self, db: &UncertainDatabase) -> &QueryPlan {
        self.satisfaction_plan.get_or_init(|| {
            let index = db.index();
            QueryPlan::compile(self.solver.query(), Some(index.statistics()))
        })
    }

    /// True iff the query holds in **some** repair — equivalently, on `db`
    /// itself (conjunctive queries are monotone) — decided by the compiled
    /// satisfaction plan.
    pub fn is_possible(&self, db: &UncertainDatabase) -> bool {
        self.satisfaction_plan(db).satisfies(db)
    }

    /// The compiled certain-rewriting plan of the dispatched solver, when
    /// it has one (the Theorem 1 region; `db` supplies the statistics on
    /// first use). `cqa-par` shards `is_certain` over this plan's root
    /// candidate space; `None` means certainty must be decided
    /// sequentially.
    pub fn rewriting_plan(&self, db: &UncertainDatabase) -> Option<&FoPlan> {
        self.solver.rewriting_plan(db)
    }

    /// Renders the compiled physical plans for the query: the satisfaction
    /// join plan, plus the solver's own plan (for the Theorem 1 region, the
    /// compiled certain rewriting).
    pub fn explain(&self, db: &UncertainDatabase) -> String {
        let mut out = format!(
            "satisfaction plan (db |= q), solver `{}`:\n{}",
            self.solver_name(),
            self.satisfaction_plan(db).explain()
        );
        if let Some(plan) = self.solver.explain_plan(db) {
            out.push_str("certain rewriting plan (CERTAINTY(q)):\n");
            out.push_str(&plan);
        }
        out
    }
}

impl CertaintySolver for CertaintyEngine {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn query(&self) -> &ConjunctiveQuery {
        self.solver.query()
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        self.solver.is_certain(db)
    }

    fn rewriting_plan(&self, db: &UncertainDatabase) -> Option<&FoPlan> {
        self.solver.rewriting_plan(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    #[test]
    fn engine_dispatches_by_classification() {
        let cases = [
            ("conference", catalog::conference().query, "rewriting"),
            ("fig4", catalog::fig4().query, "terminal-cycles"),
            ("AC(3)", catalog::ac_k(3).query, "cycle-query"),
            ("C(3)", catalog::c_k(3).query, "cycle-query"),
            ("q1", catalog::q1().query, "exact-oracle"),
            ("q0", catalog::q0().query, "exact-oracle"),
        ];
        for (name, q, expected) in cases {
            let engine = CertaintyEngine::new(&q).unwrap();
            assert_eq!(engine.solver_name(), expected, "{name}");
        }
    }

    #[test]
    fn engine_compiles_and_explains_plans() {
        let q = catalog::conference().query;
        let engine = CertaintyEngine::new(&q).unwrap();
        let db = catalog::conference_database();
        // Possible but not certain (Figure 1).
        assert!(engine.is_possible(&db));
        assert!(!engine.is_certain(&db));
        // The satisfaction plan is compiled once and cached.
        assert!(std::ptr::eq(
            engine.satisfaction_plan(&db),
            engine.satisfaction_plan(&db)
        ));
        let explain = engine.explain(&db);
        assert!(explain.contains("satisfaction plan"), "{explain}");
        assert!(explain.contains("certain rewriting plan"), "{explain}");
        assert!(explain.contains("∀-block"), "{explain}");
        // A coNP-region query has no rewriting plan, but still explains.
        let oracle_engine = CertaintyEngine::new(&catalog::q1().query).unwrap();
        let q1_db = cqa_data::UncertainDatabase::new(catalog::q1().query.schema().clone());
        let oracle_explain = oracle_engine.explain(&q1_db);
        assert!(oracle_explain.contains("satisfaction plan"));
        assert!(!oracle_explain.contains("certain rewriting plan"));
    }

    #[test]
    fn engine_answers_the_introduction_example() {
        // Figure 1: the query is true in only three of the four repairs, so it
        // is not certain.
        let engine = CertaintyEngine::new(&catalog::conference().query).unwrap();
        let db = catalog::conference_database();
        assert!(!engine.is_certain(&db));
        // Removing the uncertainty about the PODS 2016 city makes it certain.
        let mut certain_db = db.clone();
        let c = certain_db.schema().relation_id("C").unwrap();
        certain_db.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        assert!(engine.is_certain(&certain_db));
    }
}
