//! Parallel certain answers: sharding the candidate-answer space.
//!
//! The paper restricts attention to Boolean queries ("the restriction is
//! not fundamental", Section 3); `cqa_core::answers` lifts the solvers to
//! free variables by checking, for every **possible answer** (an answer on
//! the database itself — the candidate set, by monotonicity), whether the
//! grounded Boolean query is certain. Those certainty checks share nothing
//! but the immutable snapshot and the compile-once
//! [`CertainAnswersEngine`], which makes the candidate space the natural
//! shard axis: split it into chunks, decide each chunk as one batch through
//! the engine's prepared open-rewriting plan (routing large chunks through
//! the vectorized executor) on a worker, and merge the surviving tuples
//! into one ordered set — the merge is a set union into a `BTreeSet`, so
//! the result is byte-identical at every thread count.

use crate::pool::{chunk_ranges, par_map, ParPool};
use crate::ParConfig;
use cqa_core::answers::{possible_answers, shared_plan_cache, AnswerSets, CertainAnswersEngine};
use cqa_data::{Snapshot, Value};
use cqa_query::{ConjunctiveQuery, QueryError};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Computes the certain answers of a (possibly non-Boolean) conjunctive
/// query without self-joins, sharding the per-candidate certainty checks
/// across `pool` — the parallel counterpart of
/// [`cqa_core::answers::certain_answers`], with an identical result at
/// every thread count.
///
/// The sequential cutoff weighs the candidate count against the compiled
/// satisfaction plan's [estimated work](cqa_exec::QueryPlan::estimated_work)
/// (the cost-model proxy for one per-candidate check): small problems never
/// touch the pool.
pub fn certain_answers_par(
    query: &ConjunctiveQuery,
    snapshot: &Snapshot,
    pool: &ParPool,
    config: &ParConfig,
) -> Result<AnswerSets, QueryError> {
    let db = snapshot.database();
    let possible = possible_answers(query, db)?;
    let engine = Arc::new(CertainAnswersEngine::new(query)?);

    let plan = shared_plan_cache().plan(query, Some(snapshot.index().statistics()));
    let estimated = possible.len() as f64 * plan.estimated_work().max(1.0);
    if pool.thread_count() == 1 || possible.len() < 2 || estimated < config.sequential_cutoff {
        cqa_obs::count!("par.cutoff.sequential");
        let certain = engine.certain_of(db, &possible)?;
        return Ok(AnswerSets { certain, possible });
    }
    cqa_obs::count!("par.cutoff.parallel");

    // Compile the open rewriting once on this thread so the workers all hit
    // the cached plan instead of racing to build it.
    engine.open_plan(db);

    let candidates: Arc<Vec<Vec<Value>>> = Arc::new(possible.iter().cloned().collect());
    let chunks = chunk_ranges(
        candidates.len(),
        pool.thread_count() * config.chunks_per_thread,
    );
    let snapshot = snapshot.clone();
    let per_chunk = par_map(pool, chunks, move |_, range| {
        let tuples = &candidates[range];
        let verdicts = engine.verdicts(snapshot.database(), tuples)?;
        Ok::<_, QueryError>(
            tuples
                .iter()
                .zip(verdicts)
                .filter(|&(_, certain)| certain)
                .map(|(tuple, _)| tuple.clone())
                .collect::<Vec<Vec<Value>>>(),
        )
    });

    let mut certain = BTreeSet::new();
    for chunk in per_chunk {
        certain.extend(chunk?);
    }
    Ok(AnswerSets { certain, possible })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::answers::certain_answers;
    use cqa_query::{catalog, Term, Variable};

    fn free_x_conference() -> ConjunctiveQuery {
        let schema = catalog::conference().query.schema().clone();
        ConjunctiveQuery::builder(schema)
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_answers_match_the_sequential_path() {
        let query = free_x_conference();
        let db = catalog::conference_database();
        let snap = db.snapshot();
        let sequential = certain_answers(&query, &db).unwrap();
        for threads in [1usize, 2, 7] {
            let pool = ParPool::new(threads);
            let par =
                certain_answers_par(&query, &snap, &pool, &ParConfig::always_parallel()).unwrap();
            assert_eq!(par, sequential, "{threads} threads");
        }
    }

    #[test]
    fn the_cutoff_routes_small_problems_sequentially() {
        let query = free_x_conference();
        let db = catalog::conference_database();
        let snap = db.snapshot();
        let pool = ParPool::new(4);
        let config = ParConfig {
            sequential_cutoff: f64::INFINITY,
            ..ParConfig::default()
        };
        let answers = certain_answers_par(&query, &snap, &pool, &config).unwrap();
        assert_eq!(answers, certain_answers(&query, &db).unwrap());
    }

    #[test]
    fn self_joins_are_rejected_like_the_sequential_path() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let query = ConjunctiveQuery::builder(schema.clone())
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("R", [Term::var("y"), Term::var("z")])
            .build()
            .unwrap();
        let db = cqa_data::UncertainDatabase::new(schema);
        let snap = db.snapshot();
        let pool = ParPool::new(2);
        assert!(certain_answers_par(&query, &snap, &pool, &ParConfig::default()).is_err());
    }
}
