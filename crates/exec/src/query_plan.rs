//! Compiled join plans for conjunctive queries.
//!
//! [`QueryPlan::compile`] lowers a [`ConjunctiveQuery`] into a fixed
//! sequence of probe steps over a register file. The join order is chosen
//! **once**, greedily, by the cost model: at each step the atom with the
//! smallest estimated candidate count given the already-bound variables is
//! appended (the compile-time analogue of the interpreter's per-node
//! fail-first choice). Execution is then a plain backtracking loop over the
//! steps: probe, iterate the dense candidate ids, apply the per-position
//! actions, descend — no ordering decisions, no valuation cloning.
//!
//! `cqa_query::eval` remains the reference semantics; the property suite
//! checks observational equality on randomized instances.

use crate::cost::CostModel;
use crate::probe::{ProbeSpec, Registers, Slot, SlotState};
use cqa_data::{
    DatabaseIndex, FactId, PositionIndex, Schema, Statistics, UncertainDatabase, Value,
};
use cqa_obs::TraceSink;
use cqa_query::{AtomId, ConjunctiveQuery, Valuation, Variable};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One join step: the atom it came from and its compiled access.
pub(crate) struct Step {
    atom: AtomId,
    pub(crate) spec: ProbeSpec,
}

/// A compiled, immutable, shareable join plan for one conjunctive query.
///
/// Compile once per `(query, schema)`; [`QueryPlan::prepare`] binds the plan
/// to a [`DatabaseIndex`] snapshot for execution.
pub struct QueryPlan {
    schema: Arc<Schema>,
    pub(crate) steps: Vec<Step>,
    pub(crate) slots: Vec<Variable>,
    pub(crate) free_slots: Vec<Slot>,
    probe_count: usize,
    /// Cost-model estimate of the total number of search nodes a full
    /// execution visits (see [`QueryPlan::estimated_work`]).
    estimated_work: f64,
}

impl QueryPlan {
    /// Compiles `query` into a physical join plan. Statistics (typically
    /// [`DatabaseIndex::statistics`] of a representative snapshot) guide the
    /// join order; without them, neutral defaults still order keyed probes
    /// before full scans.
    pub fn compile(query: &ConjunctiveQuery, stats: Option<&Statistics>) -> QueryPlan {
        let cost = CostModel::new(stats);
        // Dense slots by first occurrence, in atom order (deterministic and
        // independent of the join order chosen below).
        let mut slot_of: FxHashMap<Variable, Slot> = FxHashMap::default();
        let mut slots: Vec<Variable> = Vec::new();
        for atom in query.atoms() {
            for v in atom.vars() {
                slot_of.entry(v.clone()).or_insert_with(|| {
                    slots.push(v.clone());
                    slots.len() - 1
                });
            }
        }
        let mut bound = vec![false; slots.len()];
        let mut remaining: Vec<AtomId> = (0..query.len()).collect();
        let mut steps: Vec<Step> = Vec::with_capacity(query.len());
        while !remaining.is_empty() {
            // Greedy fail-first order: smallest estimated candidate count
            // under the bindings established by the steps chosen so far.
            let (pick, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &aid)| {
                    let atom = query.atom(aid);
                    let probed = probed_positions(atom, &slot_of, &bound);
                    (i, cost.estimate_rows(atom.relation(), probed))
                })
                .min_by(|(i, a), (j, b)| a.total_cmp(b).then(i.cmp(j)))
                .expect("remaining is non-empty");
            let aid = remaining.remove(pick);
            let atom = query.atom(aid);
            let mut spec = ProbeSpec::build(
                atom.relation(),
                atom.terms(),
                &mut |v| {
                    let slot = slot_of[v];
                    if bound[slot] {
                        SlotState::Bound(slot)
                    } else {
                        SlotState::Unbound(slot)
                    }
                },
                steps.len(),
            );
            spec.estimated_rows = cost.estimate_rows(atom.relation(), spec.positions);
            for v in atom.vars() {
                bound[slot_of[&v]] = true;
            }
            steps.push(Step { atom: aid, spec });
        }
        let free_slots = query.free_vars().iter().map(|v| slot_of[v]).collect();
        // Upper-bound estimate of visited search nodes: the candidate
        // fan-out multiplies down the step sequence (fail-first pruning only
        // shrinks it). This is what downstream layers (`cqa-par`) compare
        // against their sequential cutoff.
        let mut estimated_work = 0.0;
        let mut fanout = 1.0;
        for step in &steps {
            fanout *= step.spec.estimated_rows.max(1.0);
            estimated_work += fanout;
        }
        QueryPlan {
            schema: query.schema().clone(),
            probe_count: steps.len(),
            steps,
            slots,
            free_slots,
            estimated_work,
        }
    }

    /// Cost-model estimate of the number of search nodes a full execution
    /// visits: the running product of the per-step candidate estimates,
    /// summed over the steps. An *estimate*, never consulted for
    /// correctness — `cqa-par` uses it as the sequential cutoff (a plan
    /// whose whole search fits in a few thousand nodes is not worth
    /// sharding across threads).
    pub fn estimated_work(&self) -> f64 {
        self.estimated_work
    }

    /// Binds the plan to an index snapshot, resolving every probe handle, so
    /// repeated executions against the snapshot skip the handle lookups.
    /// The execution path defaults to [`crate::vec::default_mode`]; override
    /// it per instance with [`PreparedQuery::with_mode`].
    pub fn prepare<'p>(&'p self, index: &Arc<DatabaseIndex>) -> PreparedQuery<'p> {
        let mut handles: Vec<Option<Arc<PositionIndex>>> = Vec::with_capacity(self.probe_count);
        for step in &self.steps {
            handles.push(if step.spec.positions.is_empty() {
                None
            } else {
                Some(index.position_index(step.spec.relation, step.spec.positions))
            });
        }
        let mode = crate::vec::default_mode();
        let vec_steps = if mode != crate::vec::ExecMode::RowAtATime {
            self.steps
                .iter()
                .map(|step| crate::vec::VProbe::build(&step.spec, index))
                .collect()
        } else {
            Vec::new()
        };
        PreparedQuery {
            plan: self,
            index: index.clone(),
            handles,
            mode,
            vec_steps,
            trace: None,
        }
    }

    /// Convenience: `db |= q` through the compiled plan.
    pub fn satisfies(&self, db: &UncertainDatabase) -> bool {
        self.prepare(&db.index()).satisfies()
    }

    /// Convenience: satisfaction by a valuation extending `base`.
    pub fn satisfies_with(&self, db: &UncertainDatabase, base: &Valuation) -> bool {
        self.prepare(&db.index()).satisfies_with(base)
    }

    /// Convenience: all satisfying valuations over `vars(q)`.
    pub fn all_valuations(&self, db: &UncertainDatabase) -> Vec<Valuation> {
        self.prepare(&db.index()).all_valuations()
    }

    /// Convenience: the answer tuples for the query's free variables.
    pub fn answers(&self, db: &UncertainDatabase) -> BTreeSet<Vec<Value>> {
        self.prepare(&db.index()).answers()
    }

    /// Number of join steps (= atoms of the query).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the plan has no steps (the empty query).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of trace cells a [`cqa_obs::TraceSink`] for this plan needs:
    /// one per join step.
    pub fn trace_ops(&self) -> usize {
        self.steps.len()
    }

    /// Renders the plan: one line per step with the access pattern (probed
    /// key components, `↦v` bindings, `=v` checks) and the cost-model
    /// estimate that ordered it.
    pub fn explain(&self) -> String {
        self.render_with(None)
    }

    /// [`QueryPlan::explain`] plus the **actuals** a traced execution
    /// recorded per step, and a header line with wall time and the
    /// executor path taken.
    pub fn explain_analyze(&self, trace: &TraceSink) -> String {
        self.render_with(Some(trace))
    }

    fn render_with(&self, trace: Option<&TraceSink>) -> String {
        let mut out = String::new();
        if self.steps.is_empty() {
            out.push_str("  (empty query: always satisfied)\n");
            return out;
        }
        let cutoff = crate::tuning::query_vec_cutoff();
        let max = crate::tuning::query_vec_max();
        let path = if (cutoff..=max).contains(&self.estimated_work) {
            "vectorized batch join"
        } else {
            "row-at-a-time backtracking"
        };
        let _ = writeln!(
            out,
            "  exec: est work ≈ {:.0} vs auto window {cutoff:.0}..{max:.0} → {path} for answers",
            self.estimated_work,
        );
        if let Some(sink) = trace {
            let _ = writeln!(
                out,
                "  actual: {} vectorized + {} row run(s), wall {:.3} ms",
                sink.vec_runs(),
                sink.row_runs(),
                sink.wall().as_secs_f64() * 1e3,
            );
        }
        for (i, step) in self.steps.iter().enumerate() {
            let act = crate::fo_plan::trace_suffix(trace, Some(i));
            let _ = writeln!(
                out,
                "  {}. {:<40} est ≈ {:.1} rows  [atom {}]{act}",
                i + 1,
                step.spec.render(&self.schema, &self.slots),
                step.spec.estimated_rows,
                step.atom,
            );
        }
        out
    }
}

/// The positions of `atom` that a probe could use given `bound` slots.
fn probed_positions(
    atom: &cqa_query::Atom,
    slot_of: &FxHashMap<Variable, Slot>,
    bound: &[bool],
) -> cqa_data::PositionSet {
    cqa_data::PositionSet::from_positions(
        atom.terms()
            .iter()
            .enumerate()
            .take(cqa_data::PositionSet::MAX_POSITIONS)
            .filter(|(_, t)| match t {
                cqa_query::Term::Const(_) => true,
                cqa_query::Term::Var(v) => bound[slot_of[v]],
            })
            .map(|(p, _)| p),
    )
}

/// A [`QueryPlan`] resolved against one [`DatabaseIndex`] snapshot.
pub struct PreparedQuery<'p> {
    pub(crate) plan: &'p QueryPlan,
    pub(crate) index: Arc<DatabaseIndex>,
    pub(crate) handles: Vec<Option<Arc<PositionIndex>>>,
    pub(crate) mode: crate::vec::ExecMode,
    pub(crate) vec_steps: Vec<crate::vec::VProbe>,
    pub(crate) trace: Option<Arc<TraceSink>>,
}

impl PreparedQuery<'_> {
    /// Overrides the execution-path choice for this prepared instance (the
    /// property suites pin each path explicitly; a global knob would race
    /// across in-process test threads). The choice applies to
    /// [`PreparedQuery::answers`] / [`PreparedQuery::answers_shard`]; the
    /// early-exit entry points (`satisfies*`, `all_valuations`) always run
    /// the row engine, whose short-circuiting beats batch materialization.
    pub fn with_mode(mut self, mode: crate::vec::ExecMode) -> Self {
        self.mode = mode;
        if mode != crate::vec::ExecMode::RowAtATime && self.vec_steps.is_empty() {
            self.vec_steps = self
                .plan
                .steps
                .iter()
                .map(|step| crate::vec::VProbe::build(&step.spec, &self.index))
                .collect();
        }
        self
    }

    /// Installs a trace sink: every subsequent execution records its
    /// per-step events into it (shareable across threads, so `cqa-par`
    /// shards can report into one sink). Tracing never changes answers.
    ///
    /// # Panics
    /// If the sink was not sized with [`QueryPlan::trace_ops`].
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        assert_eq!(
            sink.op_count(),
            self.plan.trace_ops(),
            "trace sink sized for a different plan"
        );
        self.trace = Some(sink);
        self
    }

    /// The execution mode this prepared instance runs under.
    pub fn mode(&self) -> crate::vec::ExecMode {
        self.mode
    }

    /// True iff `answers`-style entry points take the batch-join path.
    fn use_vec(&self) -> bool {
        if self.vec_steps.is_empty() {
            return false;
        }
        match self.mode {
            crate::vec::ExecMode::RowAtATime => false,
            crate::vec::ExecMode::Vectorized => true,
            crate::vec::ExecMode::Auto => {
                let work = self.plan.estimated_work;
                (crate::tuning::query_vec_cutoff()..=crate::tuning::query_vec_max()).contains(&work)
            }
        }
    }

    /// Records path choice and wall time of one entry-point run into the
    /// installed trace sink (a no-op without one).
    fn entry_point<T>(&self, vectorized: bool, run: impl FnOnce() -> T) -> T {
        let Some(sink) = &self.trace else {
            return run();
        };
        if vectorized {
            sink.count_vec_run();
        } else {
            sink.count_row_run();
        }
        let started = Instant::now();
        let out = run();
        sink.add_wall(started.elapsed());
        out
    }

    /// True iff some valuation satisfies the query on the snapshot.
    pub fn satisfies(&self) -> bool {
        self.entry_point(false, || {
            let mut regs = Registers::new(self.plan.slots.len());
            self.run(&mut regs, &mut |_| true)
        })
    }

    /// True iff some valuation *extending `base`* satisfies the query.
    /// Bindings of variables that do not occur in the query are ignored,
    /// exactly as in `cqa_query::eval::satisfies_with`.
    pub fn satisfies_with(&self, base: &Valuation) -> bool {
        self.entry_point(false, || {
            let mut regs = Registers::new(self.plan.slots.len());
            for (slot, var) in self.plan.slots.iter().enumerate() {
                if let Some(value) = base.get(var) {
                    regs.set(slot, value.clone());
                }
            }
            self.run(&mut regs, &mut |_| true)
        })
    }

    /// All satisfying valuations over `vars(q)`.
    pub fn all_valuations(&self) -> Vec<Valuation> {
        self.entry_point(false, || {
            let mut out = Vec::new();
            let mut regs = Registers::new(self.plan.slots.len());
            self.run(&mut regs, &mut |regs| {
                out.push(Valuation::from_pairs(
                    self.plan
                        .slots
                        .iter()
                        .enumerate()
                        .filter_map(|(s, v)| regs.get(s).map(|value| (v.clone(), value.clone()))),
                ));
                false
            });
            out
        })
    }

    /// The answer tuples: projections of the satisfying valuations onto the
    /// query's free variables (the empty tuple for a satisfied Boolean
    /// query).
    pub fn answers(&self) -> BTreeSet<Vec<Value>> {
        let vectorized = self.use_vec();
        if vectorized {
            cqa_obs::count!("exec.query.answers.vec");
        } else {
            cqa_obs::count!("exec.query.answers.row");
        }
        self.entry_point(vectorized, || {
            if vectorized {
                return crate::vec::query_answers(self, None);
            }
            let mut out = BTreeSet::new();
            let mut regs = Registers::new(self.plan.slots.len());
            self.run(&mut regs, &mut |regs| {
                let tuple: Option<Vec<Value>> = self
                    .plan
                    .free_slots
                    .iter()
                    .map(|&s| regs.get(s).cloned())
                    .collect();
                if let Some(tuple) = tuple {
                    out.insert(tuple);
                }
                false
            });
            out
        })
    }

    /// The width of the plan's **root candidate space**: the number of
    /// candidate facts the first join step iterates when execution starts
    /// from empty registers (the first step's probe key can only hold
    /// constants, so the list is fixed for the snapshot). `None` for the
    /// empty (step-less) plan.
    ///
    /// This is the axis `cqa-par` shards on: the search trees rooted at
    /// disjoint slices of this list are independent, so
    /// [`PreparedQuery::satisfies_shard`] /
    /// [`PreparedQuery::answers_shard`] over a partition of
    /// `0..root_width()` recombine exactly to [`PreparedQuery::satisfies`]
    /// / [`PreparedQuery::answers`].
    pub fn root_width(&self) -> Option<usize> {
        Some(self.root_candidates()?.ids().len())
    }

    /// True iff some valuation whose first-step candidate lies in `shard`
    /// (an index range into the root candidate list, see
    /// [`PreparedQuery::root_width`]) satisfies the query. The disjunction
    /// over any partition of `0..root_width()` equals
    /// [`PreparedQuery::satisfies`]; out-of-range bounds are clamped.
    pub fn satisfies_shard(&self, shard: std::ops::Range<usize>) -> bool {
        self.entry_point(false, || {
            let mut regs = Registers::new(self.plan.slots.len());
            self.run_shard(shard, &mut regs, &mut |_| true)
        })
    }

    /// The answer tuples whose witnessing valuation's first-step candidate
    /// lies in `shard`. The union over any partition of `0..root_width()`
    /// equals [`PreparedQuery::answers`] — and because the result is an
    /// ordered set, the recombined answer is byte-identical however the
    /// partition (or the thread interleaving) looked.
    pub fn answers_shard(&self, shard: std::ops::Range<usize>) -> BTreeSet<Vec<Value>> {
        let vectorized = self.use_vec();
        if vectorized {
            cqa_obs::count!("exec.query.answers.vec");
        } else {
            cqa_obs::count!("exec.query.answers.row");
        }
        self.entry_point(vectorized, || {
            if vectorized {
                return crate::vec::query_answers(self, Some(shard.clone()));
            }
            let mut out = BTreeSet::new();
            let mut regs = Registers::new(self.plan.slots.len());
            self.run_shard(shard, &mut regs, &mut |regs| {
                let tuple: Option<Vec<Value>> = self
                    .plan
                    .free_slots
                    .iter()
                    .map(|&s| regs.get(s).cloned())
                    .collect();
                if let Some(tuple) = tuple {
                    out.insert(tuple);
                }
                false
            });
            out
        })
    }

    /// The fixed candidate list of the first step under empty registers.
    fn root_candidates(&self) -> Option<crate::probe::Candidates<'_>> {
        let step = self.plan.steps.first()?;
        let regs = Registers::new(self.plan.slots.len());
        step.spec
            .candidates(&self.index, self.handles[0].as_ref(), &regs)
    }

    /// Runs the search with the first step's candidate iteration restricted
    /// to `shard`; depths ≥ 1 are the ordinary search.
    fn run_shard(
        &self,
        shard: std::ops::Range<usize>,
        regs: &mut Registers,
        on_match: &mut dyn FnMut(&Registers) -> bool,
    ) -> bool {
        let Some(step) = self.plan.steps.first() else {
            // The empty query has a single (empty) search node; by
            // convention it lives in the shard containing index 0.
            return shard.start == 0 && on_match(regs);
        };
        let Some(candidates) = step
            .spec
            .candidates(&self.index, self.handles[0].as_ref(), regs)
        else {
            return false;
        };
        let ids = candidates.ids();
        let lo = shard.start.min(ids.len());
        let hi = shard.end.min(ids.len());
        let mut writes: Vec<Slot> = Vec::new();
        let mut found = false;
        let mut scanned = 0u64;
        let mut unified = 0u64;
        for &fid in &ids[lo..hi] {
            regs.undo(&mut writes);
            scanned += 1;
            let fact = self.index.fact(FactId::from_index(fid as usize));
            if step.spec.apply(fact, regs, &mut writes) {
                unified += 1;
                if self.search(1, regs, on_match) {
                    found = true;
                    break;
                }
            }
        }
        regs.undo(&mut writes);
        self.flush_step(0, scanned, unified);
        found
    }

    fn run(&self, regs: &mut Registers, on_match: &mut dyn FnMut(&Registers) -> bool) -> bool {
        self.search(0, regs, on_match)
    }

    /// Flushes one step visit's locally-counted events to the trace sink
    /// (the single `Option` branch a traceless run pays per visit).
    #[inline]
    fn flush_step(&self, depth: usize, scanned: u64, unified: u64) {
        if let Some(sink) = &self.trace {
            let cell = sink.op(depth);
            cell.add_invocations(1);
            cell.add_rows(scanned);
            cell.add_matches(unified);
        }
    }

    fn search(
        &self,
        depth: usize,
        regs: &mut Registers,
        on_match: &mut dyn FnMut(&Registers) -> bool,
    ) -> bool {
        let Some(step) = self.plan.steps.get(depth) else {
            return on_match(regs);
        };
        let spec = &step.spec;
        let Some(candidates) = spec.candidates(&self.index, self.handles[depth].as_ref(), regs)
        else {
            // A key register is unbound: impossible by construction (probe
            // keys only use slots bound by earlier steps), kept as a safe
            // "no candidates" answer.
            self.flush_step(depth, 0, 0);
            return false;
        };
        let mut writes: Vec<Slot> = Vec::new();
        let mut found = false;
        let mut scanned = 0u64;
        let mut unified = 0u64;
        for &fid in candidates.ids() {
            regs.undo(&mut writes);
            scanned += 1;
            let fact = self.index.fact(FactId::from_index(fid as usize));
            if spec.apply(fact, regs, &mut writes) {
                unified += 1;
                if self.search(depth + 1, regs, on_match) {
                    found = true;
                    break;
                }
            }
        }
        regs.undo(&mut writes);
        self.flush_step(depth, scanned, unified);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{catalog, eval, Term};

    #[test]
    fn compiled_plan_matches_the_interpreter_on_figure1() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let index = db.index();
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.satisfies(&db), eval::satisfies(&db, &q));
        let mut compiled: Vec<String> = plan
            .all_valuations(&db)
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        let mut reference: Vec<String> = eval::all_valuations(&db, &q)
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        compiled.sort();
        reference.sort();
        assert_eq!(compiled, reference);
    }

    #[test]
    fn base_bindings_constrain_the_search() {
        let q = catalog::conference().query;
        let db = catalog::conference_database();
        let plan = QueryPlan::compile(&q, Some(db.index().statistics()));
        let hit = Valuation::from_pairs([(Variable::new("x"), Value::str("KDD"))]);
        let miss = Valuation::from_pairs([(Variable::new("x"), Value::str("ICML"))]);
        assert!(plan.satisfies_with(&db, &hit));
        assert!(!plan.satisfies_with(&db, &miss));
        assert_eq!(
            plan.satisfies_with(&db, &hit),
            eval::satisfies_with(&db, &q, &hit)
        );
    }

    #[test]
    fn answers_project_free_variables() {
        let schema = cqa_data::Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema.clone())
            .atom(
                "C",
                [Term::var("x"), Term::var("y"), Term::constant("Rome")],
            )
            .atom("R", [Term::var("x"), Term::constant("A")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let db = catalog::conference_database();
        let plan = QueryPlan::compile(&q, Some(db.index().statistics()));
        assert_eq!(plan.answers(&db), eval::answers(&db, &q));
    }

    #[test]
    fn statistics_put_the_selective_atom_first() {
        // R has one fact, S has many: the plan should open with R.
        let schema = cqa_data::Schema::from_relations([("R", 2, 1), ("S", 2, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        db.insert_values("R", ["a", "b"]).unwrap();
        for i in 0..50 {
            db.insert_values("S", [format!("b{i}"), format!("c{i}")])
                .unwrap();
        }
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .atom("S", [Term::var("y"), Term::var("z")])
            .build()
            .unwrap();
        let index = db.index();
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        let text = plan.explain();
        let r_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("1."))
            .unwrap();
        assert!(r_line.contains("R("), "R should be joined first:\n{text}");
        assert!(!plan.satisfies(&db)); // no S(b, _) fact
        assert_eq!(plan.satisfies(&db), eval::satisfies(&db, &q));
    }

    #[test]
    fn empty_query_is_always_satisfied() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        let plan = QueryPlan::compile(&q, None);
        assert!(plan.is_empty());
        let db = UncertainDatabase::new(schema);
        assert!(plan.satisfies(&db));
        assert_eq!(plan.all_valuations(&db).len(), 1);
        assert!(plan.explain().contains("empty query"));
    }

    #[test]
    fn shards_recombine_to_the_full_answer() {
        let schema = cqa_data::Schema::from_relations([("C", 3, 2), ("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema.clone())
            .atom("C", [Term::var("x"), Term::var("y"), Term::var("c")])
            .atom("R", [Term::var("x"), Term::var("r")])
            .free([Variable::new("x")])
            .build()
            .unwrap();
        let db = catalog::conference_database();
        let index = db.index();
        let plan = QueryPlan::compile(&q, Some(index.statistics()));
        let prepared = plan.prepare(&index);
        let width = prepared.root_width().expect("non-empty plan");
        assert!(width > 0);
        let full = prepared.answers();
        let full_satisfies = prepared.satisfies();
        // Partition 0..width into k shards, for several k (including more
        // shards than candidates): unions and disjunctions must recombine.
        for shards in [1usize, 2, 3, 7, width + 3] {
            let per = width.div_ceil(shards);
            let mut union = BTreeSet::new();
            let mut any = false;
            for s in 0..shards {
                let range = s * per..((s + 1) * per).min(width);
                union.extend(prepared.answers_shard(range.clone()));
                any |= prepared.satisfies_shard(range);
            }
            assert_eq!(union, full, "answers with {shards} shards");
            assert_eq!(any, full_satisfies, "satisfies with {shards} shards");
        }
        // Out-of-range shards are clamped to empty.
        assert!(prepared.answers_shard(width + 10..width + 20).is_empty());
        assert!(!prepared.satisfies_shard(width..width));
    }

    #[test]
    fn empty_plans_have_no_root_width_and_positive_work() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let empty = ConjunctiveQuery::boolean(schema.clone(), Vec::new()).unwrap();
        let plan = QueryPlan::compile(&empty, None);
        let db = UncertainDatabase::new(schema);
        let index = db.index();
        let prepared = plan.prepare(&index);
        assert_eq!(prepared.root_width(), None);
        // Shard 0 carries the single empty search node.
        assert!(prepared.satisfies_shard(0..1));
        assert!(!prepared.satisfies_shard(1..2));
        assert!(plan.estimated_work() >= 0.0);
        let q = catalog::conference().query;
        assert!(QueryPlan::compile(&q, None).estimated_work() >= 1.0);
    }

    #[test]
    fn wide_relations_fall_back_to_checked_positions() {
        let wide = 70usize;
        let schema = cqa_data::Schema::from_relations([("W", wide, 1)])
            .unwrap()
            .into_shared();
        let mut db = UncertainDatabase::new(schema.clone());
        let mut row = vec!["k"; wide];
        row[wide - 1] = "last";
        db.insert_values("W", row).unwrap();
        let mut hit: Vec<Term> = (0..wide - 1).map(|_| Term::var("x")).collect();
        hit.push(Term::constant("last"));
        let mut miss: Vec<Term> = (0..wide - 1).map(|_| Term::var("x")).collect();
        miss.push(Term::constant("other"));
        let q_hit = ConjunctiveQuery::builder(schema.clone())
            .atom("W", hit)
            .build()
            .unwrap();
        let q_miss = ConjunctiveQuery::builder(schema)
            .atom("W", miss)
            .build()
            .unwrap();
        let stats_index = db.index();
        let stats = stats_index.statistics();
        assert!(QueryPlan::compile(&q_hit, Some(stats)).satisfies(&db));
        assert!(!QueryPlan::compile(&q_miss, Some(stats)).satisfies(&db));
    }
}
