//! Interpreted vs compiled evaluation, measured on `cqa-gen` workloads and
//! recorded in `BENCH_exec.json` at the workspace root.
//!
//! Two comparisons per workload:
//!
//! * **query satisfaction** — the tree-walking indexed join of
//!   `cqa_query::eval::satisfies` vs the compiled `cqa_exec::QueryPlan`
//!   (plan compiled once, prepared per snapshot);
//! * **certain rewriting** — the Theorem 1 rewriting `φ_q` evaluated by the
//!   generic model checker `cqa_core::fo::eval::evaluate_sentence` vs the
//!   compiled `cqa_exec::FoPlan` with its block-quantified ∀ operators.
//!
//! The headline acceptance number is the rewriting comparison on the
//! `path3` workload (a ≥ 10k-fact generator instance): the interpreter
//! sweeps active-domain assignments for every universal block, the compiled
//! plan walks the block's fact list.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_exec`
//! (`--quick` shrinks the instances for CI smoke runs).

use cqa_bench::{json_escape, quick_flag, scaled_instance, time_min, write_bench_json};
use cqa_core::fo::eval::evaluate_sentence;
use cqa_core::fo::{certain_rewriting, FoFormula};
use cqa_data::UncertainDatabase;
use cqa_exec::{FoPlan, QueryPlan};
use cqa_query::{catalog, eval, ConjunctiveQuery};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Runs per timed measurement for the (fast) compiled side.
const COMPILED_RUNS: usize = 10;
/// Runs for the interpreted side (slow on the large workloads).
const INTERPRETED_RUNS: usize = 2;

struct Comparison {
    interpreted: Duration,
    compiled: Duration,
    compile_time: Duration,
    verdict: bool,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.interpreted.as_secs_f64() / self.compiled.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{ \"interpreted_ms\": {:.3}, \"compiled_ms\": {:.3}, \"compile_once_ms\": {:.3}, \"speedup\": {:.1}, \"verdict\": {} }}",
            self.interpreted.as_secs_f64() * 1e3,
            self.compiled.as_secs_f64() * 1e3,
            self.compile_time.as_secs_f64() * 1e3,
            self.speedup(),
            self.verdict,
        )
    }
}

/// Query satisfaction: interpreter (`cqa_query::eval`) vs compiled plan.
fn compare_satisfaction(db: &UncertainDatabase, query: &ConjunctiveQuery) -> Comparison {
    let index = db.index();
    let compile_start = Instant::now();
    let plan = QueryPlan::compile(query, Some(index.statistics()));
    let compile_time = compile_start.elapsed();
    let verdict = plan.prepare(&index).satisfies();
    assert_eq!(
        verdict,
        eval::satisfies(db, query),
        "compiled and interpreted satisfaction disagree on {query}"
    );
    let interpreted = time_min(INTERPRETED_RUNS, || eval::satisfies(db, query));
    let compiled = time_min(COMPILED_RUNS, || plan.prepare(&index).satisfies());
    Comparison {
        interpreted,
        compiled,
        compile_time,
        verdict,
    }
}

/// Certain rewriting: FO model checker vs compiled plan.
fn compare_rewriting(
    db: &UncertainDatabase,
    query: &ConjunctiveQuery,
    formula: &FoFormula,
) -> Comparison {
    let index = db.index();
    let compile_start = Instant::now();
    let plan = FoPlan::compile(formula, query.schema(), Some(index.statistics()));
    let compile_time = compile_start.elapsed();
    let verdict = plan.prepare(&index).eval();
    assert_eq!(
        verdict,
        evaluate_sentence(formula, db),
        "compiled and interpreted rewriting evaluation disagree on {query}"
    );
    let interpreted = time_min(INTERPRETED_RUNS, || evaluate_sentence(formula, db));
    let compiled = time_min(COMPILED_RUNS, || plan.prepare(&index).eval());
    Comparison {
        interpreted,
        compiled,
        compile_time,
        verdict,
    }
}

fn main() {
    let quick = quick_flag();
    // `path3` is the acceptance workload: a Theorem 1 query whose generator
    // instance exceeds 10k facts at n = 2200 (~13k facts).
    let workloads: Vec<(&str, ConjunctiveQuery, usize, u64)> = vec![
        (
            "path3",
            catalog::fo_path3().query,
            if quick { 300 } else { 2200 },
            11,
        ),
        (
            "conference",
            catalog::conference().query,
            if quick { 400 } else { 2600 },
            13,
        ),
    ];

    let mut entries = Vec::new();
    for (name, query, n, seed) in workloads {
        let db = scaled_instance(&query, n, seed);
        let formula = certain_rewriting(&query).expect("workload queries are Theorem 1 queries");
        eprintln!(
            "workload {name}: {} atoms, {} facts, {} blocks, rewriting size {}",
            query.len(),
            db.fact_count(),
            db.block_count(),
            formula.size(),
        );

        let sat = compare_satisfaction(&db, &query);
        eprintln!(
            "  satisfies   interpreted {:9.3} ms   compiled {:9.3} ms ({:>8.1}x)   [compile {:.3} ms]",
            sat.interpreted.as_secs_f64() * 1e3,
            sat.compiled.as_secs_f64() * 1e3,
            sat.speedup(),
            sat.compile_time.as_secs_f64() * 1e3,
        );

        let rewriting = compare_rewriting(&db, &query, &formula);
        eprintln!(
            "  rewriting   interpreted {:9.3} ms   compiled {:9.3} ms ({:>8.1}x)   [compile {:.3} ms, certain = {}]",
            rewriting.interpreted.as_secs_f64() * 1e3,
            rewriting.compiled.as_secs_f64() * 1e3,
            rewriting.speedup(),
            rewriting.compile_time.as_secs_f64() * 1e3,
            rewriting.verdict,
        );

        let mut entry = String::new();
        write!(
            entry,
            "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{}\",\n      \"atoms\": {},\n      \"facts\": {},\n      \"blocks\": {},\n      \"rewriting_size\": {},\n      \"satisfies\": {},\n      \"certain_rewriting\": {}\n    }}",
            json_escape(&query.to_string()),
            query.len(),
            db.fact_count(),
            db.block_count(),
            formula.size(),
            sat.to_json(),
            rewriting.to_json(),
        )
        .expect("writing to a String cannot fail");
        entries.push(entry);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"interpreted (tree-walking) vs compiled (physical-plan) evaluation\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_exec\",\n  \"quick\": {quick},\n  \"times\": \"minimum over {INTERPRETED_RUNS} interpreted / {COMPILED_RUNS} compiled runs; plans compiled once, prepared per snapshot\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );

    let out = write_bench_json("BENCH_exec.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
