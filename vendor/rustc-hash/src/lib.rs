//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the same public surface the workspace uses — [`FxHashMap`],
//! [`FxHashSet`] and [`FxHasher`] — backed by a fast non-cryptographic
//! multiply-xor hasher in the spirit of the original Fx hash (word-at-a-time
//! multiply by a large odd constant). It is not byte-for-byte compatible
//! with the upstream hasher; nothing in the workspace depends on the exact
//! hash values, only on speed and determinism within a process.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A hash map using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A hash set using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The default build-hasher for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Mixes each input word by xor followed by a multiplication with a large
/// odd constant (derived from the golden ratio), then a rotate to spread
/// entropy into the low bits used by the table index.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ++ "" and "a" ++ "b" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so sequential keys do not collide in the low bits.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |x: &str| bh.hash_one(x);
        assert_eq!(h("hello"), h("hello"));
        assert_ne!(h("hello"), h("world"));
        assert_ne!(h("ab"), h("ba"));
    }
}
