//! Certain-answer solvers, one per region of the tractability frontier.
//!
//! | solver | region | paper |
//! |---|---|---|
//! | [`RewritingSolver`] | acyclic attack graph | Theorem 1 (via the rewriting of [Wijsen 2012]) |
//! | [`TerminalCycleSolver`] | weak terminal cycles | Theorem 3 |
//! | [`CycleQuerySolver`] | `AC(k)` / `C(k)` | Theorem 4, Corollary 1 |
//! | [`TwoAtomSolver`] | two-atom queries | Kolaitis–Pema (used as the Theorem 3 base case) |
//! | [`ExactOracle`] | any query | brute-force / backtracking baseline (coNP region) |
//!
//! [`CertaintyEngine`] classifies the query once and dispatches to the most
//! specific solver; it is the public entry point a downstream user should
//! reach for.

pub mod cycle_query;
pub mod oracle;
pub mod rewriting;
pub mod terminal_cycles;
pub mod two_atom;

pub use cycle_query::CycleQuerySolver;
pub use oracle::ExactOracle;
pub use rewriting::RewritingSolver;
pub use terminal_cycles::TerminalCycleSolver;
pub use two_atom::TwoAtomSolver;

use crate::classify::{classify, Classification, ComplexityClass, PtimeReason};
use cqa_data::UncertainDatabase;
use cqa_query::{ConjunctiveQuery, QueryError};

/// A decision procedure for `CERTAINTY(q)` with the query fixed at
/// construction time (the paper studies data complexity: the query is not
/// part of the input).
pub trait CertaintySolver {
    /// A short human-readable name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// The query this solver answers certainty for.
    fn query(&self) -> &ConjunctiveQuery;

    /// True iff **every repair** of `db` satisfies the query.
    fn is_certain(&self, db: &UncertainDatabase) -> bool;
}

/// The automatic solver: classifies the query and picks the best algorithm.
pub struct CertaintyEngine {
    classification: Classification,
    solver: Box<dyn CertaintySolver + Send + Sync>,
}

impl CertaintyEngine {
    /// Classifies `query` and builds the most specific applicable solver.
    pub fn new(query: &ConjunctiveQuery) -> Result<Self, QueryError> {
        let classification = classify(query)?;
        let solver: Box<dyn CertaintySolver + Send + Sync> = match &classification.class {
            ComplexityClass::FirstOrderExpressible => Box::new(RewritingSolver::new(query)?),
            ComplexityClass::PolynomialTime(PtimeReason::WeakTerminalCycles) => {
                Box::new(TerminalCycleSolver::new(query)?)
            }
            ComplexityClass::PolynomialTime(PtimeReason::CycleQueryAc { .. })
            | ComplexityClass::PolynomialTime(PtimeReason::CycleQueryC { .. }) => {
                Box::new(CycleQuerySolver::new(query)?)
            }
            ComplexityClass::CoNpComplete
            | ComplexityClass::OpenConjecturedPtime
            | ComplexityClass::OutsideAcyclicScope => Box::new(ExactOracle::new(query)?),
        };
        Ok(CertaintyEngine {
            classification,
            solver,
        })
    }

    /// The classification computed at construction time.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The name of the solver the engine dispatched to.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }
}

impl CertaintySolver for CertaintyEngine {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn query(&self) -> &ConjunctiveQuery {
        self.solver.query()
    }

    fn is_certain(&self, db: &UncertainDatabase) -> bool {
        self.solver.is_certain(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::catalog;

    #[test]
    fn engine_dispatches_by_classification() {
        let cases = [
            ("conference", catalog::conference().query, "rewriting"),
            ("fig4", catalog::fig4().query, "terminal-cycles"),
            ("AC(3)", catalog::ac_k(3).query, "cycle-query"),
            ("C(3)", catalog::c_k(3).query, "cycle-query"),
            ("q1", catalog::q1().query, "exact-oracle"),
            ("q0", catalog::q0().query, "exact-oracle"),
        ];
        for (name, q, expected) in cases {
            let engine = CertaintyEngine::new(&q).unwrap();
            assert_eq!(engine.solver_name(), expected, "{name}");
        }
    }

    #[test]
    fn engine_answers_the_introduction_example() {
        // Figure 1: the query is true in only three of the four repairs, so it
        // is not certain.
        let engine = CertaintyEngine::new(&catalog::conference().query).unwrap();
        let db = catalog::conference_database();
        assert!(!engine.is_certain(&db));
        // Removing the uncertainty about the PODS 2016 city makes it certain.
        let mut certain_db = db.clone();
        let c = certain_db.schema().relation_id("C").unwrap();
        certain_db.remove_fact(&cqa_data::Fact::new(
            c,
            vec![
                cqa_data::Value::str("PODS"),
                cqa_data::Value::str("2016"),
                cqa_data::Value::str("Paris"),
            ],
        ));
        assert!(engine.is_certain(&certain_db));
    }
}
