//! Query atoms `R(x̄, ȳ)`.

use crate::{Term, Variable};
use cqa_data::{RelationId, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// Index of an atom within a [`crate::ConjunctiveQuery`] (dense, stable).
pub type AtomId = usize;

/// An atom `R(s1, ..., sn)` where each `si` is a variable or a constant.
///
/// The key positions are the prefix of length `key_len(R)` as declared in the
/// schema; the paper writes atoms as `R(x̄, ȳ)` with the key underlined.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    relation: RelationId,
    terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom. Arity is validated by [`crate::ConjunctiveQuery`].
    pub fn new(relation: RelationId, terms: impl Into<Vec<Term>>) -> Self {
        Atom {
            relation,
            terms: terms.into(),
        }
    }

    /// The relation of the atom.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// All terms, in position order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The key-position terms (`x̄`), i.e. the prefix of length `key_len`.
    pub fn key_terms<'a>(&'a self, schema: &Schema) -> &'a [Term] {
        &self.terms[..schema.relation(self.relation).key_len()]
    }

    /// The non-key terms (`ȳ`).
    pub fn non_key_terms<'a>(&'a self, schema: &Schema) -> &'a [Term] {
        &self.terms[schema.relation(self.relation).key_len()..]
    }

    /// `key(F)`: the set of variables occurring in the key positions.
    pub fn key_vars(&self, schema: &Schema) -> BTreeSet<Variable> {
        self.key_terms(schema)
            .iter()
            .filter_map(Term::as_var)
            .cloned()
            .collect()
    }

    /// `vars(F)`: the set of variables occurring anywhere in the atom.
    pub fn vars(&self) -> BTreeSet<Variable> {
        self.terms
            .iter()
            .filter_map(Term::as_var)
            .cloned()
            .collect()
    }

    /// True iff the variable occurs in the atom.
    pub fn contains_var(&self, var: &Variable) -> bool {
        self.terms
            .iter()
            .any(|t| t.as_var().is_some_and(|v| v == var))
    }

    /// True iff no variable occurs (the atom is a fact pattern).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Renders the atom with the relation name from the schema, separating
    /// the key prefix with `;` (a textual stand-in for the paper's underline),
    /// e.g. `R(x, y; z)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        AtomDisplay { atom: self, schema }
    }
}

struct AtomDisplay<'a> {
    atom: &'a Atom,
    schema: &'a Schema,
}

impl fmt::Display for AtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = self.schema.relation(self.atom.relation());
        write!(f, "{}(", rel.name)?;
        let key_len = rel.key_len();
        for (i, t) in self.atom.terms().iter().enumerate() {
            if i > 0 {
                write!(f, "{}", if i == key_len { "; " } else { ", " })?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Value;

    fn schema() -> Schema {
        Schema::from_relations([("R", 3, 2), ("S", 2, 1)]).unwrap()
    }

    fn atom(schema: &Schema, rel: &str, terms: Vec<Term>) -> Atom {
        Atom::new(schema.relation_id(rel).unwrap(), terms)
    }

    #[test]
    fn key_and_vars_follow_the_signature() {
        let s = schema();
        // R(x, 'a'; y): key positions are the first two.
        let a = atom(
            &s,
            "R",
            vec![Term::var("x"), Term::constant("a"), Term::var("y")],
        );
        assert_eq!(a.key_terms(&s).len(), 2);
        assert_eq!(a.key_vars(&s), [Variable::new("x")].into_iter().collect());
        assert_eq!(
            a.vars(),
            [Variable::new("x"), Variable::new("y")]
                .into_iter()
                .collect()
        );
        assert!(a.contains_var(&Variable::new("y")));
        assert!(!a.contains_var(&Variable::new("z")));
        assert!(!a.is_ground());
    }

    #[test]
    fn ground_atoms_have_no_vars() {
        let s = schema();
        let a = atom(
            &s,
            "S",
            vec![Term::Const(Value::str("a")), Term::Const(Value::int(1))],
        );
        assert!(a.is_ground());
        assert!(a.vars().is_empty());
    }

    #[test]
    fn display_separates_the_key_prefix() {
        let s = schema();
        let a = atom(
            &s,
            "R",
            vec![Term::var("x"), Term::var("y"), Term::var("z")],
        );
        assert_eq!(a.display(&s).to_string(), "R(x, y; z)");
        let b = atom(&s, "S", vec![Term::var("u"), Term::constant("Rome")]);
        assert_eq!(b.display(&s).to_string(), "S(u; 'Rome')");
    }

    #[test]
    fn repeated_variables_are_reported_once() {
        let s = schema();
        let a = atom(
            &s,
            "R",
            vec![Term::var("x"), Term::var("x"), Term::var("x")],
        );
        assert_eq!(a.vars().len(), 1);
        assert_eq!(a.key_vars(&s).len(), 1);
    }
}
