//! The `IsSafe` algorithm (Section 7, after Dalvi–Suciu).
//!
//! A self-join-free Boolean conjunctive query is **safe** iff the recursive
//! procedure below returns true; safe queries have `PROBABILITY(q)` in FP and
//! unsafe ones are ♯P-hard (Theorem 5). The rules, in order:
//!
//! * **R1** — a single ground atom is safe;
//! * **R2** — if the query splits into two non-empty, variable-disjoint
//!   parts, it is safe iff both parts are;
//! * **R3** — if some variable occurs in the key of *every* atom, substitute
//!   a constant for it and recurse (independent project);
//! * **R4** — if some atom has a constant key but a variable elsewhere,
//!   substitute a constant for one of its variables and recurse (disjoint
//!   project).

use cqa_data::Value;
use cqa_query::{substitute, ConjunctiveQuery, Variable};
use std::collections::BTreeSet;

/// A single step of the `IsSafe` recursion, reported for tracing/diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyRule {
    /// R1: single ground atom.
    GroundAtom,
    /// R2: split into variable-disjoint components.
    IndependentJoin,
    /// R3: a variable common to all keys was projected.
    IndependentProject(Variable),
    /// R4: a constant-key atom's variable was projected.
    DisjointProject(Variable),
    /// No rule applies: the query is unsafe.
    Unsafe,
}

/// Splits the query into variable-disjoint connected components (of the
/// variable-sharing graph on atoms).
pub fn connected_components(query: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    let n = query.len();
    let mut component = vec![usize::MAX; n];
    let mut next_component = 0usize;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        component[start] = next_component;
        while let Some(i) = stack.pop() {
            let vars_i = query.atom(i).vars();
            for (j, slot) in component.iter_mut().enumerate() {
                if *slot == usize::MAX
                    && query.atom(j).vars().intersection(&vars_i).next().is_some()
                {
                    *slot = next_component;
                    stack.push(j);
                }
            }
        }
        next_component += 1;
    }
    (0..next_component)
        .map(|c| {
            let ids: Vec<usize> = (0..n).filter(|&i| component[i] == c).collect();
            query.restricted_to(&ids)
        })
        .collect()
}

/// Returns the rule that applies to `query` at the top level.
pub fn applicable_rule(query: &ConjunctiveQuery) -> SafetyRule {
    // R1.
    if query.len() == 1 && query.vars().is_empty() {
        return SafetyRule::GroundAtom;
    }
    // R2.
    if connected_components(query).len() > 1 {
        return SafetyRule::IndependentJoin;
    }
    // R3.
    let mut common: Option<BTreeSet<Variable>> = None;
    for id in query.atom_ids() {
        let key = query.key_vars(id);
        common = Some(match common {
            None => key,
            Some(c) => c.intersection(&key).cloned().collect(),
        });
    }
    if let Some(c) = common {
        if let Some(x) = c.into_iter().next() {
            return SafetyRule::IndependentProject(x);
        }
    }
    // R4.
    for id in query.atom_ids() {
        if query.key_vars(id).is_empty() && !query.vars_of(id).is_empty() {
            let x = query
                .vars_of(id)
                .into_iter()
                .next()
                .expect("non-empty variable set");
            return SafetyRule::DisjointProject(x);
        }
    }
    SafetyRule::Unsafe
}

/// The `IsSafe` predicate of Section 7.
///
/// The empty query is vacuously safe (its probability is 1).
pub fn is_safe(query: &ConjunctiveQuery) -> bool {
    if query.is_empty() {
        return true;
    }
    let placeholder = Value::str("⊥safe⊥");
    match applicable_rule(query) {
        SafetyRule::GroundAtom => true,
        SafetyRule::IndependentJoin => connected_components(query).iter().all(is_safe),
        SafetyRule::IndependentProject(x) | SafetyRule::DisjointProject(x) => {
            is_safe(&substitute::substitute_var(query, &x, &placeholder))
        }
        SafetyRule::Unsafe => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{catalog, Term};

    #[test]
    fn catalog_safety_statuses() {
        // The conference query: C(x,y;'Rome'), R(x;'A') — x is in both keys (R3),
        // then C has a constant key and variable y (R4): safe.
        assert!(is_safe(&catalog::conference().query));
        // Single-relation queries are safe.
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let single = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::var("x"), Term::var("y")])
            .build()
            .unwrap();
        assert!(is_safe(&single));
        // path2 = {R(x;y), S(y;z)}: no common key variable, no constant-key atom: unsafe.
        assert!(!is_safe(&catalog::fo_path2().query));
        // q0, q1, C(k), AC(k) are all unsafe.
        assert!(!is_safe(&catalog::q0().query));
        assert!(!is_safe(&catalog::q1().query));
        assert!(!is_safe(&catalog::c_k(3).query));
        assert!(!is_safe(&catalog::ac_k(3).query));
        assert!(!is_safe(&catalog::fig4().query));
    }

    #[test]
    fn rules_fire_in_the_documented_order() {
        let q = catalog::conference().query;
        assert!(matches!(
            applicable_rule(&q),
            SafetyRule::IndependentProject(_)
        ));
        // Two variable-disjoint atoms trigger R2.
        let schema = cqa_data::Schema::from_relations([("A", 1, 1), ("B", 1, 1)])
            .unwrap()
            .into_shared();
        let q2 = ConjunctiveQuery::builder(schema)
            .atom("A", [Term::var("u")])
            .atom("B", [Term::var("v")])
            .build()
            .unwrap();
        assert_eq!(applicable_rule(&q2), SafetyRule::IndependentJoin);
        assert!(is_safe(&q2));
        assert_eq!(connected_components(&q2).len(), 2);
    }

    #[test]
    fn ground_atoms_are_safe() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::builder(schema)
            .atom("R", [Term::constant("a"), Term::constant("b")])
            .build()
            .unwrap();
        assert_eq!(applicable_rule(&q), SafetyRule::GroundAtom);
        assert!(is_safe(&q));
    }

    #[test]
    fn empty_query_is_safe() {
        let schema = cqa_data::Schema::from_relations([("R", 2, 1)])
            .unwrap()
            .into_shared();
        let q = ConjunctiveQuery::boolean(schema, Vec::new()).unwrap();
        assert!(is_safe(&q));
    }
}
