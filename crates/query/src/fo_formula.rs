//! A first-order formula AST over the relational vocabulary of a schema.
//!
//! The AST lives in `cqa-query` (below `cqa-core`, where the rewriting that
//! produces such formulas is constructed) so that the physical-plan compiler
//! in `cqa-exec` can lower formulas without depending on the solver layer.
//! `cqa_core::fo::formula` re-exports this module under its historical path.

use crate::{Term, Variable};
use cqa_data::{RelationId, Schema};
use std::fmt;

/// A first-order formula over relation atoms and (in)equalities of terms.
///
/// This is exactly the fragment needed to express certain rewritings:
/// relation atoms, term equality, the Boolean connectives and both
/// quantifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoFormula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A relational atom `R(t1, ..., tn)`.
    Atom {
        /// The relation.
        relation: RelationId,
        /// The terms, one per position.
        terms: Vec<Term>,
    },
    /// Term equality `s = t`.
    Equals(Term, Term),
    /// Negation.
    Not(Box<FoFormula>),
    /// Conjunction (empty conjunction = true).
    And(Vec<FoFormula>),
    /// Disjunction (empty disjunction = false).
    Or(Vec<FoFormula>),
    /// Implication.
    Implies(Box<FoFormula>, Box<FoFormula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<Variable>, Box<FoFormula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<Variable>, Box<FoFormula>),
}

impl FoFormula {
    /// Convenience constructor for a relational atom.
    pub fn atom(relation: RelationId, terms: impl Into<Vec<Term>>) -> Self {
        FoFormula::Atom {
            relation,
            terms: terms.into(),
        }
    }

    /// Conjunction that flattens trivial cases.
    pub fn and(parts: Vec<FoFormula>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                FoFormula::True => {}
                FoFormula::And(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => FoFormula::True,
            1 => flattened.pop().expect("len checked"),
            _ => FoFormula::And(flattened),
        }
    }

    /// Existential quantification that drops empty variable blocks.
    pub fn exists(vars: Vec<Variable>, body: FoFormula) -> Self {
        if vars.is_empty() {
            body
        } else {
            FoFormula::Exists(vars, Box::new(body))
        }
    }

    /// Universal quantification that drops empty variable blocks.
    pub fn forall(vars: Vec<Variable>, body: FoFormula) -> Self {
        if vars.is_empty() {
            body
        } else {
            FoFormula::Forall(vars, Box::new(body))
        }
    }

    /// Number of nodes in the formula tree (a crude size measure used by
    /// tests and the experiment harness).
    pub fn size(&self) -> usize {
        match self {
            FoFormula::True
            | FoFormula::False
            | FoFormula::Atom { .. }
            | FoFormula::Equals(_, _) => 1,
            FoFormula::Not(f) => 1 + f.size(),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                1 + fs.iter().map(FoFormula::size).sum::<usize>()
            }
            FoFormula::Implies(a, b) => 1 + a.size() + b.size(),
            FoFormula::Exists(_, f) | FoFormula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Pretty-prints the formula using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        FoDisplay {
            formula: self,
            schema,
        }
    }
}

struct FoDisplay<'a> {
    formula: &'a FoFormula,
    schema: &'a Schema,
}

impl FoDisplay<'_> {
    fn write(f: &mut fmt::Formatter<'_>, formula: &FoFormula, schema: &Schema) -> fmt::Result {
        match formula {
            FoFormula::True => write!(f, "true"),
            FoFormula::False => write!(f, "false"),
            FoFormula::Atom { relation, terms } => {
                write!(f, "{}(", schema.relation(*relation).name)?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            FoFormula::Equals(a, b) => write!(f, "{a} = {b}"),
            FoFormula::Not(inner) => {
                write!(f, "¬(")?;
                Self::write(f, inner, schema)?;
                write!(f, ")")
            }
            FoFormula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    Self::write(f, p, schema)?;
                }
                write!(f, ")")
            }
            FoFormula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    Self::write(f, p, schema)?;
                }
                write!(f, ")")
            }
            FoFormula::Implies(a, b) => {
                write!(f, "(")?;
                Self::write(f, a, schema)?;
                write!(f, " → ")?;
                Self::write(f, b, schema)?;
                write!(f, ")")
            }
            FoFormula::Exists(vars, body) => {
                write!(f, "∃")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {v}")?;
                }
                write!(f, " (")?;
                Self::write(f, body, schema)?;
                write!(f, ")")
            }
            FoFormula::Forall(vars, body) => {
                write!(f, "∀")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {v}")?;
                }
                write!(f, " (")?;
                Self::write(f, body, schema)?;
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for FoDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Self::write(f, self.formula, self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_data::Schema;

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(FoFormula::and(vec![]), FoFormula::True);
        assert_eq!(
            FoFormula::and(vec![FoFormula::True, FoFormula::False]),
            FoFormula::False
        );
        let eq = FoFormula::Equals(Term::var("x"), Term::constant("a"));
        assert_eq!(FoFormula::and(vec![eq.clone()]), eq.clone());
        assert_eq!(FoFormula::exists(vec![], eq.clone()), eq.clone());
        assert_eq!(FoFormula::forall(vec![], eq.clone()), eq);
    }

    #[test]
    fn display_is_readable() {
        let schema = Schema::from_relations([("R", 2, 1)]).unwrap();
        let r = schema.relation_id("R").unwrap();
        let formula = FoFormula::exists(
            vec![Variable::new("x")],
            FoFormula::and(vec![
                FoFormula::atom(r, vec![Term::var("x"), Term::constant("a")]),
                FoFormula::forall(
                    vec![Variable::new("y")],
                    FoFormula::Implies(
                        Box::new(FoFormula::atom(r, vec![Term::var("x"), Term::var("y")])),
                        Box::new(FoFormula::Equals(Term::var("y"), Term::constant("a"))),
                    ),
                ),
            ]),
        );
        let text = formula.display(&schema).to_string();
        assert!(text.contains('∃'));
        assert!(text.contains('∀'));
        assert!(text.contains("R(x, 'a')"));
        assert!(formula.size() > 4);
    }
}
