//! A small work-stealing thread pool, vendored offline.
//!
//! The pool backs the `cqa-par` parallel evaluation layer. It is
//! deliberately tiny — a few hundred lines of safe `std`-only code — and
//! implements exactly the execution model that layer needs:
//!
//! * a fixed set of worker threads, spawned once and joined on [`Drop`];
//! * one job deque **per worker**: submission distributes jobs round-robin,
//!   each worker pops from its own deque first and **steals** from the other
//!   deques when its own runs dry, so an uneven chunk split cannot strand
//!   work behind a slow worker;
//! * a condition variable so idle workers sleep instead of spinning.
//!
//! Jobs are `FnOnce() + Send + 'static` closures; completion and result
//! collection are the caller's business (the `cqa-par` layer uses an
//! `std::sync::mpsc` channel carrying chunk indexes, which also makes result
//! merging deterministic). Panics inside a job abort the process politely:
//! the worker thread reports the panic and the pool keeps serving — a
//! panicked job simply never reports a result.
//!
//! This is *not* a general-purpose replacement for `rayon`: there is no
//! scoped borrowing, no fork-join splitting, no adaptive chunking. It is the
//! smallest pool that makes candidate-space sharding scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A unit of work: boxed so jobs of different shapes share one deque.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the submitting side and the workers.
///
/// The sleep/wake handshake uses a **token** counter rather than a live
/// queue-length count: every submission pushes its job first and then banks
/// one token; a waking worker spends one token and re-sweeps every deque.
/// Tokens can only *over*-count outstanding work (a job may be stolen by a
/// worker that never slept, leaving its token to cause one empty sweep
/// later), never under-count it — so a banked token always guarantees the
/// corresponding job is already visible to the sweep, and a worker only
/// goes to sleep after a full sweep found every deque empty. Over-counting
/// costs at most one wasted sweep per job; under-counting (the bug this
/// design rules out) would let a worker spin or sleep on work it can see.
struct Shared {
    /// One deque per worker; `queues[i]` is worker `i`'s own deque.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Wake tokens banked by submitters, spent by waking workers.
    tokens: Mutex<usize>,
    /// Signalled whenever a token is banked or shutdown begins.
    available: Condvar,
    /// Set by [`ThreadPool::drop`]; workers exit once the deques are empty.
    shutdown: AtomicBool,
    /// Round-robin cursor for job placement.
    next: AtomicUsize,
    /// Number of jobs claimed from a deque other than the claimer's own.
    steals: AtomicUsize,
}

impl Shared {
    /// Claims one job for worker `who`: its own deque first (newest first,
    /// for locality), then a steal sweep over the other deques (oldest
    /// first, the classic stealing order). `None` means every deque was
    /// empty at the moment its lock was held.
    fn claim(&self, who: usize) -> Option<Job> {
        let n = self.queues.len();
        for offset in 0..n {
            let i = (who + offset) % n;
            let job = {
                let mut queue = self.queues[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if offset == 0 {
                    queue.pop_back()
                } else {
                    queue.pop_front()
                }
            };
            if job.is_some() {
                if offset != 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return job;
            }
        }
        None
    }
}

/// A fixed-size work-stealing thread pool.
///
/// ```
/// use std::sync::mpsc;
///
/// let pool = workpool::ThreadPool::new(4);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..100u64 {
///     let tx = tx.clone();
///     pool.execute(move || { let _ = tx.send(i * i); });
/// }
/// drop(tx);
/// assert_eq!(rx.iter().sum::<u64>(), (0..100).map(|i| i * i).sum());
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            tokens: Mutex::new(0),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// A pool sized to the machine: one worker per available hardware
    /// thread.
    pub fn with_available_parallelism() -> ThreadPool {
        ThreadPool::new(available_parallelism())
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs that were **stolen** so far: claimed by a worker from
    /// another worker's deque. A monotone, eventually consistent counter —
    /// a steal by a still-running worker may not be visible immediately.
    pub fn steals(&self) -> usize {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Submits a job. Jobs are distributed round-robin over the worker
    /// deques; an idle worker whose own deque is empty steals from the
    /// others, so placement only affects locality, never completion.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(Box::new(job));
        // Bank the wake token only after the job is visible in its deque:
        // a worker that spends this token is then guaranteed to find the
        // job (or to find it already claimed by another worker's sweep).
        let mut tokens = self
            .shared
            .tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *tokens += 1;
        self.shared.available.notify_one();
    }
}

impl Drop for ThreadPool {
    /// Finishes every queued job, then joins the workers.
    fn drop(&mut self) {
        {
            // Set the flag and notify while holding the condvar's mutex:
            // a worker is then either before its lock acquisition (it will
            // re-check `shutdown` under the lock), inside `wait` (the
            // notification wakes it), or between check and wait — a state
            // that cannot exist while we hold the lock, closing the
            // lost-wakeup window that would leave `join` hanging forever.
            let _guard = self
                .shared
                .tokens
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The number of hardware threads, with a serial fallback of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, who: usize) {
    loop {
        if let Some(job) = shared.claim(who) {
            // A panicking job must not take the worker down with it: the
            // submitter finds out because the job never reports a result.
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        // Full sweep found nothing: sleep until a token is banked. Spending
        // a token re-enters the sweep; a token whose job was already stolen
        // costs one empty sweep and the worker sleeps again.
        let mut tokens = shared.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if *tokens > 0 {
                *tokens -= 1;
                break;
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            tokens = shared
                .available
                .wait(tokens)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.thread_count(), 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..500u64 {
            let tx = tx.clone();
            pool.execute(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let counter = counter.clone();
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn stealing_lets_idle_workers_finish_anothers_backlog() {
        // Two workers; the round-robin placement puts half the jobs in each
        // deque, but worker 0 is blocked until the gate opens, so worker 1
        // must steal worker 0's share for the batch to finish promptly.
        let pool = ThreadPool::new(2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (tx, rx) = mpsc::channel();
        {
            let gate = gate.clone();
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        for i in 0..50u32 {
            let tx = tx.clone();
            pool.execute(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        let seen: Vec<u32> = rx.iter().take(50).collect();
        assert_eq!(seen.len(), 50);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_pool() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("job panic"));
        let (tx, rx) = mpsc::channel();
        pool.execute(move || {
            let _ = tx.send(42);
        });
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.thread_count(), 1);
        assert!(available_parallelism() >= 1);
    }
}
