//! # cqa-obs — metrics and execution tracing for the certainty engine
//!
//! A dependency-free (std-only) observability core, sitting below every
//! other crate of the workspace so all of them can report into it:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics; a counter increment on a
//!   resolved handle is one `fetch_add(Relaxed)`;
//! * [`Histogram`] — fixed power-of-two (log-scale) buckets with
//!   [p50/p90/p99 extraction](HistogramSnapshot::percentile), built for
//!   latency-in-nanoseconds but happy with any `u64`;
//! * [`Registry`] — a process-wide, name-keyed store of the above with a
//!   [snapshot](Registry::snapshot) / [diff](Snapshot::diff) /
//!   [render](Snapshot::render) API (the future server's metrics
//!   endpoint, the CLI's `certainty stats`, and `serve`'s `\stats`);
//! * [`TraceSink`] — per-operator execution tracing (rows scanned,
//!   probes, matches, quantifier waves, row-fallback triggers, wall
//!   time), installed explicitly per prepared plan by `cqa-exec` — the
//!   backing store of `certainty explain --analyze`.
//!
//! ## Cost model of the instrumentation
//!
//! The stack's hot loops never touch the registry: per-row events go to
//! plain local integers and are flushed into a [`TraceSink`] only when one
//! is installed (an `Option` branch otherwise). Registry counters fire at
//! *entry points* (one evaluation, one batch, one cache probe), through
//! the [`count!`]/[`observe!`] macros, which resolve their handle once per
//! call site and check the global [`enabled`] switch first. `bench_obs`
//! holds the whole arrangement under a <5% overhead budget on the
//! BENCH_vec scenarios; [`set_enabled`]`(false)` gives it the
//! uninstrumented baseline without recompiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod trace;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{MetricValue, Registry, Snapshot};
pub use trace::{OpTrace, TraceSink};

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide instrumentation switch, on by default. When off, the
/// [`count!`]/[`observe!`] macros become a single relaxed load — the
/// in-process "uninstrumented" baseline `bench_obs` measures against.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// True iff registry-level instrumentation is on (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns registry-level instrumentation on or off, process-wide.
/// [`TraceSink`]s are unaffected: they are installed explicitly and only
/// cost anything where installed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Increments a named counter in the global [`Registry`].
///
/// `count!("name")` adds 1, `count!("name", n)` adds `n`. The handle is
/// resolved once per call site (a `OnceLock`), so the steady-state cost is
/// an enabled check plus one relaxed `fetch_add`.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::Registry::global().counter($name))
                .add($n as u64);
        }
    }};
}

/// Records a `u64` observation into a named histogram in the global
/// [`Registry`]. Same handle-caching and enabled-check as [`count!`].
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::Registry::global().histogram($name))
                .record($value as u64);
        }
    }};
}

/// Records a [`std::time::Duration`] (as nanoseconds) into a named
/// histogram in the global [`Registry`].
#[macro_export]
macro_rules! observe_duration {
    ($name:expr, $duration:expr) => {{
        $crate::observe!($name, ($duration).as_nanos().min(u64::MAX as u128) as u64)
    }};
}

/// Sets a named gauge in the global [`Registry`] to `value`.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::Registry::global().gauge($name))
                .set($value as i64);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers both the macros and the switch: the switch is
    /// process-global, so probing it from a second concurrent test would
    /// race with this one.
    #[test]
    fn macros_feed_the_global_registry_and_honor_the_switch() {
        count!("obs.test.macro_counter");
        count!("obs.test.macro_counter", 4);
        observe!("obs.test.macro_hist", 1000);
        observe_duration!("obs.test.macro_hist", std::time::Duration::from_nanos(2000));
        gauge_set!("obs.test.macro_gauge", -7);
        let snap = Registry::global().snapshot();
        assert_eq!(snap.counter("obs.test.macro_counter"), 5);
        let hist = snap.histogram("obs.test.macro_hist").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(snap.gauge("obs.test.macro_gauge"), Some(-7));

        set_enabled(false);
        assert!(!enabled());
        count!("obs.test.macro_counter");
        set_enabled(true);
        let snap = Registry::global().snapshot();
        assert_eq!(snap.counter("obs.test.macro_counter"), 5);
        assert!(enabled());
    }
}
