//! Concurrency test harness for the `cqa-serve` network server.
//!
//! Four groups of tests, all deterministic (seeded interleavings, condvar
//! gates and barriers — never sleeps-as-synchronization):
//!
//! 1. **Byte-identical answers under concurrency**: N client threads fire
//!    mixed query streams at one server; every response line must equal,
//!    byte for byte, what the single-threaded reference engine renders.
//! 2. **Epoch isolation**: a writer publishes a seeded sequence of epochs
//!    while readers query concurrently; every reader response must match
//!    exactly one epoch's reference rendering — never a torn mixture.
//! 3. **Protocol robustness**: malformed, oversized, truncated, non-UTF-8
//!    and abruptly-disconnected requests (including seeded raw-byte fuzz)
//!    never panic a handler or wedge the server.
//! 4. **Backpressure and deadlines**: a saturated server rejects promptly
//!    with a well-formed response, a slow query hits its deadline, and the
//!    connection stays usable afterwards.

use cqa::core::answers::certain_answers;
use cqa::data::Schema;
use cqa::par::{BatchEngine, BatchOutcome, BatchResult, ParPool};
use cqa::parser::parse_document;
use cqa::serve::{protocol, Request, Server, ServerConfig, ServerHandle, WriteOp};
use proptest::prelude::*;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Watchdog for client reads: loud failure instead of a hung test. No test
/// *waits* this long — correctness never depends on the value.
const WATCHDOG: Duration = Duration::from_secs(30);

fn start(db: cqa::data::UncertainDatabase, config: ServerConfig) -> ServerHandle {
    Server::bind(db, "127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn acceptor")
}

/// A line-protocol test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(WATCHDOG))
            .expect("set watchdog");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .expect("response before the watchdog");
        assert!(n > 0, "connection closed while expecting a response");
        line.trim_end_matches(['\n', '\r']).to_string()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    fn expect_eof(&mut self) {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .expect("EOF before the watchdog");
        assert_eq!(n, 0, "expected the server to close, got: {line:?}");
    }
}

/// The document served in the read-path tests: the paper's Figure 1 core
/// plus deterministic filler rows (uncertain city blocks, conflicting
/// ranks) so open queries have enough candidates to span several
/// cancellation chunks.
fn serving_document() -> String {
    let mut text = String::from(
        "relation C(conf*, year*, city)\n\
         relation R(conf*, rank)\n\
         C(PODS, 2016, Rome)\n\
         C(PODS, 2016, Paris)\n\
         C(KDD, 2017, Rome)\n\
         R(PODS, A)\n\
         R(KDD, A)\n\
         R(KDD, B)\n",
    );
    for i in 0..40 {
        let conf = format!("conf{}", i % 7);
        let year = 2000 + i;
        let _ = writeln!(text, "C({conf}, {year}, city{})", i % 5);
        if i % 3 == 0 {
            let _ = writeln!(text, "C({conf}, {year}, Rome)");
        }
    }
    for c in 0..7 {
        let _ = writeln!(text, "R(conf{c}, A)");
        if c % 2 == 0 {
            let _ = writeln!(text, "R(conf{c}, B)");
        }
    }
    text
}

/// The request lines of the byte-equality test: Boolean, open (several
/// chunks wide), constant-only and malformed shapes.
fn query_lines() -> Vec<&'static str> {
    vec![
        "certain rome :- C(x, y, \"Rome\"), R(x, \"A\")",
        "which(x) :- C(x, y, \"Rome\"), R(x, \"A\")",
        "pairs(x, y) :- C(x, y, z)",
        "city :- C(x, y, \"Paris\")",
        "broken((",
        "ranked(x) :- R(x, y)",
    ]
}

/// What the server must answer for `line` as request number `request_no`,
/// computed through the **single-threaded** reference engine and the same
/// shared rendering, so equality compares evaluation rather than
/// formatting.
fn expected_response(
    schema: &Arc<Schema>,
    reference: &BatchEngine,
    line: &str,
    request_no: usize,
) -> Option<String> {
    match protocol::parse_request(schema, line, request_no) {
        Ok(None) => None,
        Err(e) => Some(format!("q{request_no}: error: {e}")),
        Ok(Some(Request::Query { name, query })) => Some(if query.is_boolean() {
            protocol::render_result(&reference.answer(&name, &query))
        } else {
            let sets = certain_answers(&query, reference.snapshot().database())
                .expect("reference evaluation");
            protocol::render_result(&BatchResult {
                name,
                outcome: BatchOutcome::Answers(sets),
            })
        }),
        Ok(Some(_)) => unreachable!("the byte-equality suite sends only queries"),
    }
}

fn handler_panics() -> u64 {
    cqa::obs::Registry::global()
        .snapshot()
        .counter("serve.handler_panics")
}

// ---------------------------------------------------------------------------
// 1. Byte-identical answers under concurrency
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_match_the_single_threaded_reference() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let lines = query_lines();

    let handle = start(
        doc.database.clone(),
        ServerConfig {
            threads: Some(3),
            query_chunk: 8, // several chunks per open query
            ..ServerConfig::default()
        },
    );
    const CLIENTS: usize = 6;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            // Each client sends the same queries rotated by its id, so the
            // in-flight mix differs while every (line, request_no) pair has
            // a precomputed reference response.
            let sequence: Vec<&'static str> = (0..lines.len())
                .map(|k| lines[(k + client_id) % lines.len()])
                .collect();
            let expected: Vec<String> = sequence
                .iter()
                .enumerate()
                .map(|(k, line)| {
                    expected_response(&schema, &reference, line, k + 1)
                        .expect("every test line gets a response")
                })
                .collect();
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for (line, expected) in sequence.iter().zip(&expected) {
                    let response = client.ask(line);
                    assert_eq!(
                        &response, expected,
                        "client {client_id} diverged from the reference on `{line}`"
                    );
                }
                assert_eq!(client.ask("\\quit"), "bye");
                client.expect_eof();
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    // 5 well-formed queries per client actually evaluated (the malformed
    // line is answered at parse time, before admission).
    assert_eq!(handle.served(), CLIENTS * 5);
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// 2. Epoch isolation
// ---------------------------------------------------------------------------

const EPOCH_DOC: &str = "relation S(k*, v)\nS(key0, 0)\n";
const PROBE: &str = "probe(x) :- S(x, y)";

/// The seeded write sequence: each op inserts a fresh key or removes the
/// oldest present key, so the present set is always a contiguous key range
/// and every epoch's answer set is distinct from every other's.
fn epoch_script() -> (Vec<String>, Vec<String>) {
    let doc = parse_document(EPOCH_DOC).expect("parse epoch document");
    let mut mirror = doc.database;
    let (_, probe) =
        cqa::parser::parse_query_line(&doc.schema, PROBE, 1).expect("parse probe query");
    let render = |db: &cqa::data::UncertainDatabase| {
        protocol::render_result(&BatchResult {
            name: "probe".to_string(),
            outcome: BatchOutcome::Answers(
                certain_answers(&probe, db).expect("reference evaluation"),
            ),
        })
    };
    let mut renderings = vec![render(&mirror)];
    let mut ops = Vec::new();
    let mut present: Vec<(usize, i64)> = vec![(0, 0)];
    let mut next_key = 1usize;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..24 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let op = if state.is_multiple_of(3) && present.len() > 1 {
            let (key, value) = present.remove(0); // oldest first: sets never repeat
            format!("\\remove S(key{key}, {value})")
        } else {
            let key = next_key;
            next_key += 1;
            present.push((key, key as i64));
            format!("\\insert S(key{key}, {key})")
        };
        // Apply the op to the local mirror through the *same* parser the
        // server uses, so reference and server cannot drift.
        let Ok(Some(Request::Write(write))) = protocol::parse_request(&doc.schema, &op, 1) else {
            panic!("script op must parse as a write: {op}");
        };
        let changed = match &write {
            WriteOp::Insert(fact) => mirror.insert(fact.clone()).expect("mirror insert"),
            WriteOp::RemoveFact(fact) => mirror.remove_fact(fact),
            WriteOp::RemoveBlock(fact) => mirror.remove_block_of(fact),
        };
        assert!(changed, "every scripted op must be effective: {op}");
        renderings.push(render(&mirror));
        ops.push(op);
    }
    (ops, renderings)
}

#[test]
fn readers_observe_exactly_one_epoch() {
    let doc = parse_document(EPOCH_DOC).expect("parse epoch document");
    let (ops, renderings) = epoch_script();
    let distinct: HashSet<&String> = renderings.iter().collect();
    assert_eq!(
        distinct.len(),
        renderings.len(),
        "epoch renderings must be pairwise distinct for the test to be conclusive"
    );

    let handle = start(
        doc.database,
        ServerConfig {
            threads: Some(2),
            query_chunk: 4,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Register a materialized view over the probe query before any write:
    // its reading publishes atomically with each epoch, so a `\view` reply
    // must match exactly one epoch's rendering, like any query reply.
    let mut admin = Client::connect(addr);
    let subscribed = admin.ask(&format!("\\subscribe probe {PROBE}"));
    assert!(
        subscribed.starts_with("ok: subscribed probe, epoch "),
        "{subscribed}"
    );
    assert_eq!(&admin.ask("\\view probe"), &renderings[0]);

    // A `\remove-block` of an absent block is a no-op: no epoch published,
    // no view reading disturbed.
    let epoch_before = admin.ask("\\epoch");
    let noop = admin.ask("\\remove-block S(zzz, 0)");
    assert!(noop.starts_with("ok: no-op, epoch "), "{noop}");
    assert_eq!(admin.ask("\\epoch"), epoch_before);
    assert_eq!(&admin.ask("\\view probe"), &renderings[0]);

    const READERS: usize = 3;
    const PROBES: usize = 16;
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let writer = {
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            barrier.wait();
            let mut last_epoch = 0u64;
            for op in &ops {
                let response = client.ask(op);
                let epoch: u64 = response
                    .rsplit(' ')
                    .next()
                    .and_then(|e| e.parse().ok())
                    .unwrap_or_else(|| panic!("unexpected write response: {response}"));
                assert!(
                    response.starts_with("ok: inserted, epoch ")
                        || response.starts_with("ok: removed, epoch "),
                    "unexpected write response: {response}"
                );
                assert!(epoch > last_epoch, "epochs must publish in write order");
                last_epoch = epoch;
            }
        })
    };
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                // Alternate fresh evaluation and the maintained view: both
                // must always land on exactly one published epoch.
                (0..PROBES)
                    .map(|i| {
                        if i % 2 == 0 {
                            client.ask(PROBE)
                        } else {
                            client.ask("\\view probe")
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    writer.join().expect("writer thread");
    let mut observed = Vec::new();
    for reader in readers {
        observed.extend(reader.join().expect("reader thread"));
    }
    for response in &observed {
        assert!(
            distinct.contains(response),
            "reader response matches no epoch (torn read?): {response}"
        );
    }
    // After the writer finished, a fresh reader sees exactly the final
    // epoch — from evaluation and from the incrementally repaired view
    // alike, byte for byte.
    let mut client = Client::connect(addr);
    let last = renderings.last().expect("at least one epoch");
    assert_eq!(
        &client.ask(PROBE),
        last,
        "the final epoch must be visible once the writer completed"
    );
    assert_eq!(
        &client.ask("\\view probe"),
        last,
        "the maintained view must have converged to the final epoch"
    );
    // Stats report the registered view; no stale view read ever happened
    // (a reading and its epoch's engine publish in one swap).
    assert!(client.ask("\\stats").contains("views 1,"));
    assert_eq!(
        cqa::obs::Registry::global()
            .snapshot()
            .counter("stream.view.stale_reads"),
        0
    );
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// 3. Protocol robustness
// ---------------------------------------------------------------------------

#[test]
fn protocol_abuse_is_answered_or_closed_never_wedged() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let handle = start(
        doc.database,
        ServerConfig {
            threads: Some(2),
            max_request_bytes: 64,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Non-UTF-8 bytes: an error response, and the connection stays usable.
    let mut client = Client::connect(addr);
    client.writer.write_all(b"\xff\xfe\xfd\n").expect("send");
    assert_eq!(client.recv(), "q1: error: request is not valid UTF-8");
    assert!(client.ask("\\epoch").starts_with("epoch: "));

    // Unknown commands: an error response, connection stays usable.
    assert_eq!(
        client.ask("\\frobnicate"),
        "q3: error: unknown command `\\frobnicate`"
    );
    assert!(client.ask("\\epoch").starts_with("epoch: "));

    // An oversized request line: loud error, then the server closes (the
    // framing can no longer be trusted).
    let mut client = Client::connect(addr);
    let response = client.ask(&"a".repeat(100));
    assert_eq!(
        response,
        "request: error: request exceeds 64 bytes; closing connection"
    );
    client.expect_eof();

    // A truncated request followed by an abrupt disconnect.
    let stream = TcpStream::connect(addr).expect("connect");
    (&stream).write_all(b"certain ro").expect("send partial");
    drop(stream);

    // An abrupt disconnect mid-stream, responses never read.
    let stream = TcpStream::connect(addr).expect("connect");
    (&stream).write_all(b"\\epoch\n\\epoch\n").expect("send");
    drop(stream);

    // The server is still healthy for a well-formed client.
    let mut client = Client::connect(addr);
    assert!(client.ask("\\epoch").starts_with("epoch: "));
    assert_eq!(client.ask("\\quit"), "bye");
    client.expect_eof();
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

/// Seeded raw-byte generator for the fuzz test: newlines, protocol-ish
/// vocabulary and arbitrary (frequently non-UTF-8) bytes.
fn hostile_bytes(seed: u64, len: usize) -> Vec<u8> {
    const VOCAB: &[u8] =
        b"\\()\",:-# certain insert remove stats epoch quit RCSq xyz 0123456789 GET POST /metrics";
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 8 {
                0 => b'\n',
                1 => (state >> 8) as u8,
                _ => VOCAB[(state >> 8) as usize % VOCAB.len()],
            }
        })
        .collect()
}

/// One server shared by all fuzz cases: a panic or wedge in any case makes
/// the health check of every later case fail loudly.
fn fuzz_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let doc = parse_document(&serving_document()).expect("parse document");
        start(
            doc.database,
            ServerConfig {
                threads: Some(2),
                ..ServerConfig::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary byte streams — including embedded real requests, garbage
    /// and abrupt EOF — never panic a handler and never wedge the server.
    #[test]
    fn raw_byte_streams_never_wedge_the_server(seed in 0u64..1_000_000, len in 0usize..2048) {
        let handle = fuzz_server();
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_read_timeout(Some(WATCHDOG)).expect("set watchdog");
        // The server may close mid-write (e.g. the bytes spell `\quit` or an
        // HTTP request line): write errors are the client's problem.
        let _ = (&stream).write_all(&hostile_bytes(seed, len));
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers until it closes our connection;
        // the watchdog turns a wedged handler into a loud failure.
        let mut drained = Vec::new();
        (&stream)
            .read_to_end(&mut drained)
            .expect("server must close the connection, not wedge");
        drop(stream);
        // The server survived: a fresh well-formed client is served.
        let mut client = Client::connect(handle.addr());
        prop_assert!(client.ask("\\epoch").starts_with("epoch: "));
        prop_assert_eq!(handler_panics(), 0);
    }
}

// ---------------------------------------------------------------------------
// 4. Backpressure and deadlines
// ---------------------------------------------------------------------------

/// A condvar gate for the admission/deadline tests: the server's
/// `on_query_start` hook parks every admitted query on the gate (counting
/// arrivals) until the test opens it. This pins "a query is running right
/// now" without any timing assumptions.
struct Gate {
    state: Mutex<(usize, bool)>, // (queries parked so far, open?)
    cv: Condvar,
}

impl Gate {
    fn closed() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        })
    }

    /// Called by the server hook: announce arrival, park until opened.
    fn enter(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.0 += 1;
        self.cv.notify_all();
        while !state.1 {
            state = self.cv.wait(state).expect("gate wait");
        }
    }

    /// Test side: block until `n` queries have reached the gate.
    fn await_parked(&self, n: usize) {
        let mut state = self.state.lock().expect("gate lock");
        while state.0 < n {
            state = self.cv.wait(state).expect("gate wait");
        }
    }

    /// Test side: release every parked (and future) query.
    fn open(&self) {
        self.state.lock().expect("gate lock").1 = true;
        self.cv.notify_all();
    }
}

fn gated_config(gate: &Arc<Gate>) -> ServerConfig {
    let hook_gate = gate.clone();
    ServerConfig {
        threads: Some(2),
        on_query_start: Some(Arc::new(move |_token| hook_gate.enter())),
        ..ServerConfig::default()
    }
}

#[test]
fn saturated_server_rejects_overload_promptly() {
    let doc = parse_document(&serving_document()).expect("parse document");

    // max_inflight = 0: every query is rejected, commands still work.
    let handle = start(
        doc.database.clone(),
        ServerConfig {
            threads: Some(2),
            max_inflight: 0,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr());
    assert_eq!(
        client.ask("certain rome :- C(x, y, \"Rome\"), R(x, \"A\")"),
        "rome: error: overloaded: 0 queries in flight (limit 0); retry later"
    );
    assert!(client.ask("\\epoch").starts_with("epoch: "));
    handle.shutdown();

    // max_inflight = 1 with one query parked at the gate: the slot is
    // provably held, so the second client's rejection is deterministic.
    let gate = Gate::closed();
    let handle = start(
        doc.database.clone(),
        ServerConfig {
            max_inflight: 1,
            ..gated_config(&gate)
        },
    );
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let slow = "slow :- C(x, y, \"Rome\"), R(x, \"A\")";
    let fast = "fast :- C(x, y, \"Paris\")";

    let mut holder = Client::connect(handle.addr());
    holder.send(slow); // parks at the gate holding the only slot
    gate.await_parked(1);
    let mut rejected = Client::connect(handle.addr());
    assert_eq!(
        rejected.ask(fast),
        "fast: error: overloaded: 1 queries in flight (limit 1); retry later"
    );
    gate.open();
    // The parked query now completes with the correct answer.
    let expected = expected_response(&schema, &reference, slow, 1).expect("reference");
    assert_eq!(holder.recv(), expected);
    // And the slot is free again for the previously rejected client.
    let expected = expected_response(&schema, &reference, fast, 2).expect("reference");
    assert_eq!(rejected.ask(fast), expected);
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

#[test]
fn slow_queries_hit_their_deadline_and_the_connection_survives() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let gate = Gate::closed();
    let handle = start(
        doc.database.clone(),
        ServerConfig {
            deadline: Some(Duration::from_millis(50)),
            ..gated_config(&gate)
        },
    );
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let slow = "slow :- C(x, y, \"Rome\"), R(x, \"A\")";

    // The gate stays closed, so the query *cannot* produce a result before
    // its deadline: the timeout response is deterministic.
    let mut client = Client::connect(handle.addr());
    assert_eq!(
        client.ask(slow),
        "slow: error: deadline exceeded after 50 ms"
    );
    let snapshot = cqa::obs::Registry::global().snapshot();
    assert!(snapshot.counter("serve.deadline_exceeded") >= 1);

    // Release the abandoned query; its late result lands in a dropped
    // channel and its admission slot frees. The same connection then
    // answers normally (the gate is now open).
    gate.open();
    let expected = expected_response(&schema, &reference, slow, 2).expect("reference");
    assert_eq!(client.ask(slow), expected);
    assert_eq!(client.ask("\\quit"), "bye");
    client.expect_eof();
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// HTTP endpoints
// ---------------------------------------------------------------------------

/// One-shot HTTP exchange: sends `Connection: close` so the (keep-alive by
/// default) server closes after the response and `read_to_string` sees EOF.
fn http_exchange(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(WATCHDOG))
        .expect("set watchdog");
    stream.write_all(request).expect("send http request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    response
}

/// Reads one complete HTTP response (status line, headers, Content-Length
/// body) off a persistent connection, leaving the socket open for the next
/// exchange. Returns (status line, body).
fn read_http_response(reader: &mut BufReader<TcpStream>) -> (String, String) {
    let mut status = String::new();
    assert!(
        reader.read_line(&mut status).expect("read status line") > 0,
        "connection closed while expecting an HTTP response"
    );
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (
        status.trim_end().to_string(),
        String::from_utf8(body).expect("utf-8 body"),
    )
}

#[test]
fn http_endpoints_serve_metrics_and_queries() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let handle = start(
        doc.database,
        ServerConfig {
            threads: Some(2),
            max_request_bytes: 4096,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // POST /query answers one protocol line (checked against the reference
    // first, so /metrics below has at least one sample to render).
    let line = "certain rome :- C(x, y, \"Rome\"), R(x, \"A\")";
    let expected = expected_response(&schema, &reference, line, 1).expect("reference");
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{line}",
        line.len()
    );
    let response = http_exchange(addr, request.as_bytes());
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("http body");
    assert_eq!(body, format!("{expected}\n"));

    // GET /metrics renders the Prometheus exposition of the registry.
    let response = http_exchange(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(
        response.contains("# TYPE serve_connections counter"),
        "{response}"
    );
    assert!(
        response.contains("# TYPE par_batch_query_nanos summary"),
        "{response}"
    );
    assert!(
        response.contains("# TYPE serve_epochs_pinned gauge"),
        "{response}"
    );
    assert!(
        response.contains("# TYPE serve_views_registered gauge"),
        "{response}"
    );

    // Unknown paths 404; oversized bodies are refused with 413.
    let response = http_exchange(
        addr,
        b"GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(
        response.starts_with("HTTP/1.1 404 Not Found\r\n"),
        "{response}"
    );
    let response = http_exchange(
        addr,
        b"POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 999999\r\n\r\n",
    );
    assert!(
        response.starts_with("HTTP/1.1 413 Payload Too Large\r\n"),
        "{response}"
    );
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

#[test]
fn http_keep_alive_serves_many_requests_on_one_socket() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let handle = start(
        doc.database,
        ServerConfig {
            threads: Some(2),
            ..ServerConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(WATCHDOG))
        .expect("set watchdog");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    // First request: HTTP/1.1 without a Connection header — persistent by
    // default, and the server says so.
    let line = "certain rome :- C(x, y, \"Rome\"), R(x, \"A\")";
    let expected = expected_response(&schema, &reference, line, 1).expect("reference");
    write!(
        writer,
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{line}",
        line.len()
    )
    .expect("send first request");
    let (status, body) = read_http_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    assert_eq!(body, format!("{expected}\n"));

    // Second request rides the SAME socket.
    write!(writer, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send second request");
    let (status, body) = read_http_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    assert!(
        body.contains("# TYPE serve_http_keepalive_reuses counter"),
        "{body}"
    );

    // `Connection: close` ends the session after the response.
    write!(
        writer,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("send final request");
    let (status, _) = read_http_response(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200 OK"), "{status}");
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("EOF after Connection: close");
    assert!(rest.is_empty(), "server must close after Connection: close");
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}

#[test]
fn views_are_served_over_both_protocols() {
    let doc = parse_document(&serving_document()).expect("parse document");
    let handle = start(
        doc.database,
        ServerConfig {
            threads: Some(2),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    // Subscribe, then read the view over the line protocol: the reading is
    // rendered exactly like the equivalent query response.
    let query = "which(x) :- C(x, y, \"Rome\"), R(x, \"A\")";
    let direct = client.ask(query);
    let subscribed = client.ask(&format!("\\subscribe which {query}"));
    assert!(
        subscribed.starts_with("ok: subscribed which, epoch "),
        "{subscribed}"
    );
    assert_eq!(client.ask("\\view which"), direct);

    // A write repairs the view; the next reading reflects it without
    // re-running the query.
    let response = client.ask("\\insert C(PODS, 2020, Rome)");
    assert!(response.starts_with("ok: inserted, epoch "), "{response}");
    let repaired = client.ask("\\view which");
    assert_eq!(repaired, client.ask(query), "view tracks the new epoch");

    // Unknown views error without disturbing the connection.
    assert_eq!(
        client.ask("\\view nope"),
        "nope: error: unknown view `nope`"
    );

    // GET /view/<name> serves the same reading over HTTP; unknown names 404.
    let response = http_exchange(
        addr,
        b"GET /view/which HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("http body");
    assert_eq!(body, format!("{repaired}\n"));
    let response = http_exchange(
        addr,
        b"GET /view/nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(
        response.starts_with("HTTP/1.1 404 Not Found\r\n"),
        "{response}"
    );
    assert_eq!(handler_panics(), 0);
    handle.shutdown();
}
