//! Sustained throughput and latency of the `cqa-serve` network server
//! under a mixed read/write load, recorded in `BENCH_serve.json` at the
//! workspace root.
//!
//! For each client count, the benchmark binds a fresh server on an
//! ephemeral port and runs three phases:
//!
//! 1. **Verify** — one client replays every benchmark query and asserts
//!    each response **byte-identical** to the single-threaded reference
//!    engine's rendering (shared `cqa_serve::protocol` formatting, so the
//!    comparison is about evaluation, not formatting).
//! 2. **Measure** — N client threads send the query mix synchronously
//!    (one request in flight per connection), recording one client-side
//!    latency sample per request, while one writer connection streams
//!    effective `\insert`/`\remove` writes, each publishing a new epoch.
//! 3. **Final-state check** — after the writers stop, the write stream is
//!    replayed onto a local mirror database and a probe query must render
//!    exactly the mirror's reference answer.
//!
//! Reported per client count: sustained qps (total queries / wall time)
//! and nearest-rank p50/p99 of the client-side latency samples.
//!
//! The recorded `host_cpus` matters when reading the numbers: on a 1-CPU
//! container all clients, the writer, and the server's pool time-slice one
//! core, so qps does not scale with clients — the correctness phases still
//! mean exactly what they say.
//!
//! Run with `cargo run --release -p cqa-bench --bin bench_serve`
//! (`--quick` shrinks the workload for CI smoke runs).

use cqa_bench::{ms, quick_flag, write_bench_json};
use cqa_core::answers::certain_answers;
use cqa_data::Schema;
use cqa_par::{BatchEngine, BatchOutcome, BatchResult, ParPool};
use cqa_parser::parse_document;
use cqa_serve::{protocol, Request, Server, ServerConfig, WriteOp};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The served document: Figure 1's conference schema with enough filler
/// rows that open queries cross several cancellation chunks.
fn serving_document(rows: usize) -> String {
    let mut text = String::from(
        "relation C(conf*, year*, city)\n\
         relation R(conf*, rank)\n\
         C(PODS, 2016, Rome)\n\
         C(PODS, 2016, Paris)\n\
         C(KDD, 2017, Rome)\n\
         R(PODS, A)\n\
         R(KDD, A)\n\
         R(KDD, B)\n",
    );
    for i in 0..rows {
        let conf = format!("conf{}", i % 17);
        let year = 2000 + i;
        let _ = writeln!(text, "C({conf}, {year}, city{})", i % 5);
        if i % 3 == 0 {
            let _ = writeln!(text, "C({conf}, {year}, Rome)");
        }
    }
    for c in 0..17 {
        let _ = writeln!(text, "R(conf{c}, A)");
        if c % 2 == 0 {
            let _ = writeln!(text, "R(conf{c}, B)");
        }
    }
    text
}

/// The benchmark's query mix: Boolean certainty, open queries of different
/// widths, and a constant-only membership probe.
fn query_mix() -> Vec<&'static str> {
    vec![
        "certain rome :- C(x, y, \"Rome\"), R(x, \"A\")",
        "which(x) :- C(x, y, \"Rome\"), R(x, \"A\")",
        "ranked(x) :- R(x, y)",
        "city :- C(x, y, \"Paris\")",
    ]
}

/// The probe deciding the final-state check: it ranges exactly over the
/// facts the writer inserts.
const FINAL_PROBE: &str = "wrote(x) :- C(x, y, \"wcity\")";

/// What the single-threaded reference renders for `line`.
fn reference_response(schema: &Arc<Schema>, reference: &BatchEngine, line: &str) -> String {
    let Ok(Some(Request::Query { name, query })) = protocol::parse_request(schema, line, 1) else {
        panic!("benchmark queries must parse: {line}");
    };
    if query.is_boolean() {
        protocol::render_result(&reference.answer(&name, &query))
    } else {
        let sets = certain_answers(&query, reference.snapshot().database())
            .expect("benchmark queries are answerable");
        protocol::render_result(&BatchResult {
            name,
            outcome: BatchOutcome::Answers(sets),
        })
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to the benchmark server");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        response.trim_end_matches(['\n', '\r']).to_string()
    }
}

/// Nearest-rank percentile of an unsorted latency sample set.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct LoadPoint {
    clients: usize,
    queries: usize,
    writes: usize,
    wall: Duration,
    qps: f64,
    p50: Duration,
    p99: Duration,
}

fn main() {
    let quick = quick_flag();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let client_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let per_client = if quick { 60 } else { 400 };
    if host_cpus == 1 {
        eprintln!(
            "WARNING: this host reports 1 CPU. Clients, the writer and the server pool \
             time-slice a single core, so qps will not scale with client count; the \
             byte-equality and final-state verifications still hold."
        );
    }

    let doc = parse_document(&serving_document(if quick { 40 } else { 150 }))
        .expect("benchmark document parses");
    let schema = doc.schema.clone();
    let reference = BatchEngine::new(doc.database.snapshot(), ParPool::new(1));
    let queries = query_mix();
    let expected: Vec<String> = queries
        .iter()
        .map(|line| reference_response(&schema, &reference, line))
        .collect();

    let mut points = Vec::new();
    for &clients in client_counts {
        let server = Server::bind(doc.database.clone(), "127.0.0.1:0", ServerConfig::default())
            .expect("bind ephemeral port");
        let handle = server.spawn().expect("spawn acceptor");
        let addr = handle.addr();

        // Phase 1: byte-equality verification against the reference.
        let mut verifier = Client::connect(addr);
        for (line, expected) in queries.iter().zip(&expected) {
            let response = verifier.ask(line);
            assert_eq!(
                &response, expected,
                "server response diverged from the single-threaded reference on `{line}`"
            );
        }

        // Phase 2: timed mixed read/write load.
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut ops: Vec<String> = Vec::new();
                let mut oldest = 0usize;
                let mut next = 0usize;
                while !done.load(Ordering::Relaxed) {
                    // Mostly inserts of fresh keys, occasionally removing the
                    // oldest — every op is effective and publishes an epoch.
                    let op = if next > oldest && next.is_multiple_of(5) {
                        let op = format!("\\remove C(wconf{oldest}, 1, wcity)");
                        oldest += 1;
                        op
                    } else {
                        let op = format!("\\insert C(wconf{next}, 1, wcity)");
                        next += 1;
                        op
                    };
                    let response = client.ask(&op);
                    assert!(
                        response.starts_with("ok: inserted, epoch ")
                            || response.starts_with("ok: removed, epoch "),
                        "unexpected write response: {response}"
                    );
                    ops.push(op);
                }
                ops
            })
        };
        let started = Instant::now();
        let readers: Vec<_> = (0..clients)
            .map(|reader_id| {
                let queries = queries.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let line = queries[(i + reader_id) % queries.len()];
                        let sent = Instant::now();
                        let response = client.ask(line);
                        latencies.push(sent.elapsed());
                        assert!(
                            !response.contains("error:"),
                            "read failed under load: {response}"
                        );
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<Duration> = Vec::new();
        for reader in readers {
            latencies.extend(reader.join().expect("reader thread"));
        }
        let wall = started.elapsed();
        done.store(true, Ordering::Relaxed);
        let ops = writer.join().expect("writer thread");

        // Phase 3: the final epoch must equal the mirror of the write log.
        let mut mirror = doc.database.clone();
        for op in &ops {
            let Ok(Some(Request::Write(write))) = protocol::parse_request(&schema, op, 1) else {
                panic!("write op must parse: {op}");
            };
            let changed = match &write {
                WriteOp::Insert(fact) => mirror.insert(fact.clone()).expect("mirror insert"),
                WriteOp::RemoveFact(fact) => mirror.remove_fact(fact),
                WriteOp::RemoveBlock(fact) => mirror.remove_block_of(fact),
            };
            assert!(changed, "benchmark writes are effective by construction");
        }
        let mirror_engine = BatchEngine::new(mirror.snapshot(), ParPool::new(1));
        let expected_final = reference_response(&schema, &mirror_engine, FINAL_PROBE);
        let observed_final = Client::connect(addr).ask(FINAL_PROBE);
        assert_eq!(
            observed_final, expected_final,
            "final epoch diverged from the replayed write log"
        );
        handle.shutdown();

        latencies.sort_unstable();
        let queries_total = clients * per_client;
        let point = LoadPoint {
            clients,
            queries: queries_total,
            writes: ops.len(),
            wall,
            qps: queries_total as f64 / wall.as_secs_f64().max(1e-9),
            p50: percentile(&latencies, 50.0),
            p99: percentile(&latencies, 99.0),
        };
        eprintln!(
            "{} client(s): {} queries + {} writes in {:.1} ms — {:.1} qps, p50 {:.3} ms, p99 {:.3} ms",
            point.clients,
            point.queries,
            point.writes,
            ms(point.wall),
            point.qps,
            ms(point.p50),
            ms(point.p99),
        );
        points.push(point);
    }

    let caveat = if host_cpus == 1 {
        "\n  \"caveat\": \"host_cpus == 1: clients, writer and server pool time-slice a single core, so qps does not scale with client count on this host\","
    } else {
        ""
    };
    let mut entries = String::new();
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            entries,
            "{}    {{ \"clients\": {}, \"queries\": {}, \"writes\": {}, \"wall_ms\": {:.3}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
            if i == 0 { "" } else { ",\n" },
            p.clients,
            p.queries,
            p.writes,
            ms(p.wall),
            p.qps,
            ms(p.p50),
            ms(p.p99),
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"concurrent certainty serve: sustained qps and latency under mixed read/write\",\n  \"generated_by\": \"cargo run --release -p cqa-bench --bin bench_serve\",\n  \"quick\": {quick},\n  \"host_cpus\": {host_cpus},{caveat}\n  \"verified\": \"per client count: every warm-up response byte-identical to the single-threaded reference; final epoch equal to a replay of the write log\",\n  \"load\": [\n{entries}\n  ]\n}}\n",
    );
    let out = write_bench_json("BENCH_serve.json", &json);
    eprintln!("wrote {}", out.display());
    print!("{json}");
}
